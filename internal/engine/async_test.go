package engine

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"sicost/internal/core"
	"sicost/internal/faultinject"
	"sicost/internal/wal"
)

// syncGateDevice delegates to a MemDevice but blocks Sync until
// released, holding commits in the pre-durable window.
type syncGateDevice struct {
	wal.MemDevice
	mu      sync.Mutex
	open    bool
	release chan struct{}
}

func newSyncGateDevice() *syncGateDevice {
	return &syncGateDevice{release: make(chan struct{})}
}

func (d *syncGateDevice) Sync() error {
	d.mu.Lock()
	open := d.open
	d.mu.Unlock()
	if !open {
		<-d.release
	}
	return d.MemDevice.Sync()
}

func (d *syncGateDevice) Open() {
	d.mu.Lock()
	if !d.open {
		d.open = true
		close(d.release)
	}
	d.mu.Unlock()
}

// TestAsyncCommitVisibleBeforeDurable pins the async ordering contract:
// Commit returns and the commit is visible while its record still waits
// for the device sync; DurableSeq trails CommitSeq by exactly the
// durability lag; the durability future resolves when the sync lands.
func TestAsyncCommitVisibleBeforeDurable(t *testing.T) {
	dev := newSyncGateDevice()
	db := Open(Config{WAL: wal.Config{Device: dev}, AsyncCommit: true})
	defer db.Close()

	// Setup commits ride the gate too, so open it temporarily.
	dev.Open()
	if err := db.CreateTable(kvSchema("T")); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if err := tx.Insert("T", kv(1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.WaitDurable(tx.CommitCSN()); err != nil {
		t.Fatal(err)
	}

	// Re-arm the gate for the commit under test.
	dev.mu.Lock()
	dev.open = false
	dev.release = make(chan struct{})
	dev.mu.Unlock()

	tx = db.Begin()
	tx.SetTag("async-under-test")
	mustSetV(t, tx, 1, 101)
	if err := tx.Commit(); err != nil {
		t.Fatalf("async commit blocked or failed: %v", err)
	}
	csn := tx.CommitCSN()
	if csn == 0 {
		t.Fatal("async commit reported no CSN")
	}

	// Published: a new snapshot sees the write immediately.
	r := db.Begin()
	if v := mustGetV(t, r, 1); v != 101 {
		t.Fatalf("async commit not visible: read %d", v)
	}
	r.Abort()

	// Not yet durable: the future is unresolved and DurableSeq trails.
	select {
	case <-tx.Durable():
		t.Fatal("durability future resolved before the device sync")
	default:
	}
	if ds, cs := db.DurableSeq(), db.CommitSeq(); ds >= cs {
		t.Fatalf("no durability lag: DurableSeq %d, CommitSeq %d", ds, cs)
	}

	dev.Open()
	if err := <-tx.Durable(); err != nil {
		t.Fatalf("durability future: %v", err)
	}
	if err := db.WaitDurable(csn); err != nil {
		t.Fatal(err)
	}
	if ds, cs := db.DurableSeq(), db.CommitSeq(); ds != cs {
		t.Fatalf("lag after sync: DurableSeq %d, CommitSeq %d", ds, cs)
	}
}

// TestSyncCommitDurableFutureResolved: sync commits (and read-only
// commits) hand out an already-resolved future, so callers can await
// Durable() uniformly.
func TestSyncCommitDurableFutureResolved(t *testing.T) {
	dev := wal.NewMemDevice()
	db := openDurableKV(t, dev)
	defer db.Close()

	tx := db.Begin()
	mustSetV(t, tx, 1, 101)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-tx.Durable():
		if err != nil {
			t.Fatalf("sync commit durable future: %v", err)
		}
	default:
		t.Fatal("sync commit's future not pre-resolved")
	}
	ro := db.Begin()
	_ = mustGetV(t, ro, 1)
	if err := ro.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ro.Durable():
	default:
		t.Fatal("read-only commit's future not pre-resolved")
	}
}

// TestAsyncCloseDrains: DB.Close on an async database flushes the
// pending tail instead of failing it — a graceful shutdown loses
// nothing.
func TestAsyncCloseDrains(t *testing.T) {
	dev := wal.NewMemDevice()
	db := Open(Config{WAL: wal.Config{Device: dev}, AsyncCommit: true})
	if err := db.CreateTable(kvSchema("T")); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if err := tx.Insert("T", kv(1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	var lastCSN uint64
	for v := int64(101); v <= 120; v++ {
		tx := db.Begin()
		mustSetV(t, tx, 1, v)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		lastCSN = tx.CommitCSN()
	}
	db.Close()

	db2, _, err := Recover(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := scanT(t, db2)[1]; got != 120 {
		t.Fatalf("graceful async close lost commits: recovered v=%d, want 120", got)
	}
	if db2.CommitSeq() != lastCSN {
		t.Fatalf("recovered CommitSeq %d, want %d", db2.CommitSeq(), lastCSN)
	}
}

// TestTxSetAsyncOverride: the per-transaction override wins over the
// database default in both directions.
func TestTxSetAsyncOverride(t *testing.T) {
	dev := newSyncGateDevice()
	dev.Open()
	db := Open(Config{WAL: wal.Config{Device: dev}})
	defer db.Close()
	if err := db.CreateTable(kvSchema("T")); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if err := tx.Insert("T", kv(1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Gate closed again: a sync-default DB with a per-tx async override
	// must not block.
	dev.mu.Lock()
	dev.open = false
	dev.release = make(chan struct{})
	dev.mu.Unlock()

	tx = db.Begin()
	tx.SetAsync(true)
	mustSetV(t, tx, 1, 101)
	if err := tx.Commit(); err != nil {
		t.Fatalf("async-override commit: %v", err)
	}
	select {
	case <-tx.Durable():
		t.Fatal("future resolved with the gate closed")
	default:
	}
	dev.Open()
	if err := <-tx.Durable(); err != nil {
		t.Fatal(err)
	}

	// And the reverse: an async-default DB with SetAsync(false) waits.
	db2 := Open(Config{WAL: wal.Config{Device: wal.NewMemDevice()}, AsyncCommit: true})
	defer db2.Close()
	if err := db2.CreateTable(kvSchema("T")); err != nil {
		t.Fatal(err)
	}
	tx2 := db2.Begin()
	tx2.SetAsync(false)
	if err := tx2.Insert("T", kv(1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-tx2.Durable():
		if err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatal("sync-override commit returned before durability")
	}
}

// TestQuickAsyncDurablePrefix is the testing/quick property required by
// the issue: for ANY interleaving of sync and async committers with a
// crash injected at an arbitrary flush or sync point, (1) the log's
// commit CSNs appear in strictly ascending order — coalescing never
// reorders the stream; (2) recovery rebuilds exactly the published
// state restricted to CSNs ≤ the recovered high-water mark; (3) every
// commit whose durability future resolved nil survives (acked durables
// are never lost — async loses only the un-acked tail).
func TestQuickAsyncDurablePrefix(t *testing.T) {
	prop := func(seed int64, faultAfter uint8, faultAtSync bool) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := wal.NewMemDevice()
		reg := faultinject.New(seed)
		db := Open(Config{WAL: wal.Config{Device: dev, MaxBatch: 3}, Faults: reg})
		if err := db.CreateTable(kvSchema("T")); err != nil {
			t.Fatal(err)
		}
		const keys = 6
		load := db.Begin()
		for k := int64(1); k <= keys; k++ {
			if err := load.Insert("T", kv(k, 0)); err != nil {
				t.Fatal(err)
			}
		}
		if err := load.Commit(); err != nil {
			t.Fatal(err)
		}

		point := wal.FaultFlush
		if faultAtSync {
			point = wal.FaultSync
		}
		if err := reg.Arm(faultinject.Spec{
			Point: point, After: uint64(faultAfter % 24), Count: 1,
			Action: faultinject.ActPanic,
		}); err != nil {
			t.Fatal(err)
		}

		// Interleaved committers: each transaction bumps one key's value
		// to a unique stamp, randomly sync or async.
		type ack struct {
			csn     uint64
			durable <-chan error
		}
		var (
			mu   sync.Mutex
			acks []ack
		)
		var wg sync.WaitGroup
		const workers = 4
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int, seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				for i := 0; i < 8; i++ {
					tx := db.Begin()
					tx.SetAsync(r.Intn(2) == 0)
					k := int64(r.Intn(keys) + 1)
					rec, err := tx.Get("T", core.Int(k))
					if err != nil {
						tx.Abort()
						continue
					}
					if err := tx.Update("T", core.Int(k), kv(k, rec[1].Int64()+1)); err != nil {
						tx.Abort()
						continue
					}
					if err := tx.Commit(); err != nil {
						continue
					}
					mu.Lock()
					acks = append(acks, ack{csn: tx.CommitCSN(), durable: tx.Durable()})
					mu.Unlock()
				}
			}(w, rng.Int63())
		}
		wg.Wait()

		// Let every pending flush resolve, then classify the acks. (The
		// WAL may or may not have crashed, depending on where the fault
		// landed relative to the committed traffic.)
		db.log.Drain()
		var durable []uint64
		for _, a := range acks {
			if err := <-a.durable; err == nil {
				durable = append(durable, a.csn)
			}
		}

		// Published state and its restriction to the durable prefix,
		// captured before teardown.
		img, err := dev.Contents()
		if err != nil {
			t.Fatal(err)
		}
		db.Close()

		// (1) CSN order on the device: strictly ascending.
		frames, _ := wal.ScanLog(img)
		last := uint64(0)
		for _, f := range frames {
			if f.Commit == nil {
				continue
			}
			if f.Commit.CSN <= last {
				t.Logf("seed %d: device CSNs out of order: %d after %d", seed, f.Commit.CSN, last)
				return false
			}
			last = f.Commit.CSN
		}

		db2, _, err := Recover(wal.NewMemDeviceBytes(img), Config{})
		if err != nil {
			t.Logf("seed %d: recover: %v", seed, err)
			return false
		}
		defer db2.Close()
		high := db2.CommitSeq()

		// (2) Recovered state == published state restricted to ≤ high.
		want := map[int64]int64{}
		if err := db.ScanAsOf("T", high, func(k core.Value, rec core.Record) bool {
			want[k.Int64()] = rec[1].Int64()
			return true
		}); err != nil {
			t.Fatal(err)
		}
		got := scanT(t, db2)
		if len(got) != len(want) {
			t.Logf("seed %d: recovered %d rows, want %d", seed, len(got), len(want))
			return false
		}
		for k, v := range want {
			if got[k] != v {
				t.Logf("seed %d: key %d recovered %d, want %d (high %d)", seed, k, got[k], v, high)
				return false
			}
		}

		// (3) Acked-durable commits are never lost.
		for _, csn := range durable {
			if csn > high {
				t.Logf("seed %d: durable-acked CSN %d beyond recovered high %d", seed, csn, high)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestStressAsyncCommittersVsRecovery races MPL-16 mixed sync/async
// committers on a segmented log into an injected coalesced-window
// crash, then recovers and audits the durable-prefix contract under
// -race (wired into make ci's stress pass).
func TestStressAsyncCommittersVsRecovery(t *testing.T) {
	dev, err := wal.NewMemSegmentLog(2048)
	if err != nil {
		t.Fatal(err)
	}
	reg := faultinject.New(42)
	db := Open(Config{WAL: wal.Config{Device: dev, MaxBatch: 4}, Faults: reg, AsyncCommit: true})
	if err := db.CreateTable(kvSchema("T")); err != nil {
		t.Fatal(err)
	}
	const keys = 16
	load := db.Begin()
	for k := int64(1); k <= keys; k++ {
		if err := load.Insert("T", kv(k, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := load.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.WaitDurable(load.CommitCSN()); err != nil {
		t.Fatal(err)
	}

	// Crash deep enough into the run that rotations and coalesced
	// windows have happened.
	if err := reg.Arm(faultinject.Spec{Point: wal.FaultSync, After: 40, Count: 1, Action: faultinject.ActPanic}); err != nil {
		t.Fatal(err)
	}

	var (
		mu      sync.Mutex
		durable []uint64
	)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w) * 7919))
			for i := 0; i < 40; i++ {
				tx := db.Begin()
				tx.SetAsync(r.Intn(2) == 0)
				k := int64(r.Intn(keys) + 1)
				rec, err := tx.Get("T", core.Int(k))
				if err != nil {
					tx.Abort()
					continue
				}
				if err := tx.Update("T", core.Int(k), kv(k, rec[1].Int64()+1)); err != nil {
					tx.Abort()
					continue
				}
				if err := tx.Commit(); err != nil {
					continue
				}
				csn := tx.CommitCSN()
				fut := tx.Durable()
				go func() {
					if err := <-fut; err == nil {
						mu.Lock()
						durable = append(durable, csn)
						mu.Unlock()
					}
				}()
			}
		}(w)
	}
	wg.Wait()
	db.log.Drain()
	if db.WAL().Broken() == nil {
		t.Fatal("injected sync crash never fired — the stress run was too small")
	}

	img, err := dev.Contents()
	if err != nil {
		t.Fatal(err)
	}
	preSeq := db.CommitSeq()
	db.Close()

	db2, rep, err := Recover(wal.NewMemDeviceBytes(img), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	high := db2.CommitSeq()
	if high > preSeq {
		t.Fatalf("recovered CommitSeq %d beyond pre-crash %d", high, preSeq)
	}
	if rep.ReplayedCommits == 0 {
		t.Fatal("nothing replayed — device lost the whole run")
	}

	mu.Lock()
	defer mu.Unlock()
	for _, csn := range durable {
		if csn > high {
			t.Fatalf("durable-acked CSN %d lost in crash (recovered high %d)", csn, high)
		}
	}
	// And the recovered state matches the published state at the
	// recovered watermark.
	want := map[int64]int64{}
	if err := db.ScanAsOf("T", high, func(k core.Value, rec core.Record) bool {
		want[k.Int64()] = rec[1].Int64()
		return true
	}); err != nil {
		t.Fatal(err)
	}
	got := scanT(t, db2)
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d: recovered %d, want %d at watermark %d", k, got[k], v, high)
		}
	}
}

// TestAsyncBrokenWALFailsFutures: once the device dies, async futures
// resolve with the sticky error and WaitDurable reports it rather than
// hanging.
func TestAsyncBrokenWALFailsFutures(t *testing.T) {
	dev := wal.NewMemDevice()
	reg := faultinject.New(7)
	db := Open(Config{WAL: wal.Config{Device: dev}, Faults: reg, AsyncCommit: true})
	defer db.Close()
	if err := db.CreateTable(kvSchema("T")); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if err := tx.Insert("T", kv(1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.WaitDurable(tx.CommitCSN()); err != nil {
		t.Fatal(err)
	}

	if err := reg.Arm(faultinject.Spec{Point: wal.FaultSync, Count: 1, Action: faultinject.ActPanic}); err != nil {
		t.Fatal(err)
	}
	tx = db.Begin()
	mustSetV(t, tx, 1, 101)
	if err := tx.Commit(); err != nil {
		t.Fatalf("async commit must publish before the crash lands: %v", err)
	}
	if err := <-tx.Durable(); !errors.Is(err, core.ErrInjected) {
		t.Fatalf("future on crashed WAL = %v, want ErrInjected", err)
	}
	if err := db.WaitDurable(tx.CommitCSN()); !errors.Is(err, core.ErrInjected) {
		t.Fatalf("WaitDurable on crashed WAL = %v, want ErrInjected", err)
	}
	// The commit is still visible — published state and durable state
	// have diverged, which is exactly what DurableSeq reports.
	r := db.Begin()
	if v := mustGetV(t, r, 1); v != 101 {
		t.Fatalf("published async commit vanished from the live db: %d", v)
	}
	r.Abort()
	if ds := db.DurableSeq(); ds >= db.CommitSeq() {
		t.Fatalf("DurableSeq %d did not trail CommitSeq %d after durability loss", ds, db.CommitSeq())
	}
}

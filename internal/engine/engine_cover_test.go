package engine

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"sicost/internal/core"
	"sicost/internal/simres"
)

func TestAccessors(t *testing.T) {
	db := openKV(t, core.SnapshotFUW, core.PlatformCommercial)
	if db.Mode() != core.SnapshotFUW || db.Platform() != core.PlatformCommercial {
		t.Fatal("DB accessors")
	}
	if db.Machine() == nil {
		t.Fatal("Machine accessor")
	}
	tx := db.Begin()
	defer tx.Abort()
	if tx.ID() == 0 {
		t.Fatal("tx id")
	}
	if tx.Platform() != core.PlatformCommercial {
		t.Fatal("tx platform")
	}
	if tx.Cost() != DefaultCostModel(core.PlatformCommercial) {
		t.Fatal("tx cost model")
	}
	if tx.StartCSN() == 0 {
		t.Fatal("start CSN should reflect the loader's commit")
	}
	if tx.Stmts() != 0 {
		t.Fatal("fresh txn has no statements")
	}
	_ = mustGetV(t, tx, 1)
	if tx.Stmts() != 1 {
		t.Fatalf("Stmts = %d", tx.Stmts())
	}
	tx.Charge(0) // no-op path
}

func TestSetResources(t *testing.T) {
	db := openKV(t, core.SnapshotFUW, core.PlatformPostgres)
	db.SetResources(simres.Config{VirtualCPUs: 1, TxnCPU: 2 * time.Millisecond})
	start := time.Now()
	tx := db.Begin() // must charge 2ms on the new machine
	tx.Abort()
	if time.Since(start) < 2*time.Millisecond {
		t.Fatal("SetResources not effective")
	}
}

func TestChargeSpendsSimulatedCPU(t *testing.T) {
	db := Open(Config{
		Mode: core.SnapshotFUW,
		Res:  simres.Config{VirtualCPUs: 1, TxnCPU: time.Microsecond},
	})
	defer db.Close()
	if err := db.CreateTable(kvSchema("T")); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	start := time.Now()
	tx.Charge(3 * time.Millisecond)
	if time.Since(start) < 3*time.Millisecond {
		t.Fatal("Charge did not spin")
	}
	tx.Abort()
}

func TestScanLatestStopsEarly(t *testing.T) {
	db := openKV(t, core.SnapshotFUW, core.PlatformPostgres)
	n := 0
	if err := db.ScanLatest("T", func(core.Value, core.Record) bool {
		n++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("scan visited %d rows after stop", n)
	}
	// Deleted rows are skipped.
	tx := db.Begin()
	if err := tx.Delete("T", core.Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	n = 0
	if err := db.ScanLatest("T", func(core.Value, core.Record) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("scan saw %d rows, want 1 after delete", n)
	}
}

func TestInsertEdgeCases(t *testing.T) {
	db := openKV(t, core.SnapshotFUW, core.PlatformPostgres)

	// Re-inserting a deleted key succeeds.
	tx := db.Begin()
	if err := tx.Delete("T", core.Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := db.Begin()
	if err := tx2.Insert("T", kv(1, 5)); err != nil {
		t.Fatalf("insert after delete: %v", err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}

	// Insert validation errors.
	tx3 := db.Begin()
	defer tx3.Abort()
	if err := tx3.Insert("Missing", kv(9, 9)); err == nil {
		t.Fatal("insert into missing table accepted")
	}
	if err := tx3.Insert("T", core.Record{core.Int(9)}); err == nil {
		t.Fatal("bad arity insert accepted")
	}

	// Insert racing a concurrent committed insert of the same key: the
	// second transaction cannot see the first's row but must still get
	// a uniqueness error.
	a := db.Begin()
	b := db.Begin()
	if err := a.Insert("T", kv(77, 1)); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	err := b.Insert("T", kv(77, 2))
	if !errors.Is(err, core.ErrUniqueViolation) && !errors.Is(err, core.ErrSerialization) {
		t.Fatalf("concurrent insert of same PK: %v", err)
	}
	b.Abort()
}

func TestDeleteEdgeCases(t *testing.T) {
	db := openKV(t, core.SnapshotFUW, core.PlatformPostgres)
	tx := db.Begin()
	defer tx.Abort()
	if err := tx.Delete("Missing", core.Int(1)); err == nil {
		t.Fatal("delete from missing table accepted")
	}
	// Delete then delete again within the txn: second sees no row.
	if err := tx.Delete("T", core.Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("T", core.Int(1)); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	// Update after own delete also fails.
	if err := tx.Update("T", core.Int(1), kv(1, 9)); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("update after delete: %v", err)
	}

	// FUW applies to deletes: concurrent committed update aborts the
	// deleter.
	d1 := db.Begin()
	d2 := db.Begin()
	mustSetV(t, d1, 2, 7)
	if err := d1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := d2.Delete("T", core.Int(2)); !errors.Is(err, core.ErrSerialization) {
		t.Fatalf("delete vs concurrent update: %v", err)
	}
	d2.Abort()
}

func TestReadForUpdateEdgeCases(t *testing.T) {
	db := openKV(t, core.SnapshotFUW, core.PlatformPostgres)
	tx := db.Begin()
	defer tx.Abort()
	if _, err := tx.ReadForUpdate("Missing", core.Int(1)); err == nil {
		t.Fatal("sfu on missing table accepted")
	}
	if _, err := tx.ReadForUpdate("T", core.Int(404)); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("sfu on missing row: %v", err)
	}
	// sfu sees own uncommitted write.
	mustSetV(t, tx, 1, 42)
	rec, err := tx.ReadForUpdate("T", core.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if rec[1].Int64() != 42 {
		t.Fatalf("sfu read %d, want own write", rec[1].Int64())
	}
}

func TestReadForUpdateUnder2PL(t *testing.T) {
	db := openKV(t, core.Strict2PL, core.PlatformPostgres)
	tx := db.Begin()
	if _, err := tx.ReadForUpdate("T", core.Int(1)); err != nil {
		t.Fatal(err)
	}
	// A concurrent reader must block behind the X lock.
	r := db.Begin()
	got := make(chan error, 1)
	go func() {
		_, err := r.Get("T", core.Int(1))
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("reader did not block behind 2PL sfu: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	r.Abort()
}

func TestGetByIndexUnder2PL(t *testing.T) {
	db := Open(Config{Mode: core.Strict2PL})
	defer db.Close()
	schema := &core.Schema{
		Name: "Acct",
		Columns: []core.Column{
			{Name: "Name", Kind: core.KindString, NotNull: true},
			{Name: "ID", Kind: core.KindInt, NotNull: true},
		},
		PK: 0, Unique: []int{1},
	}
	if err := db.CreateTable(schema); err != nil {
		t.Fatal(err)
	}
	w := db.Begin()
	if err := w.Insert("Acct", core.Record{core.Str("a"), core.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	r := db.Begin()
	rec, err := r.GetByIndex("Acct", "ID", core.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if rec[0] != core.Str("a") {
		t.Fatalf("rec = %v", rec)
	}
	r.Abort()
	if _, err := r.GetByIndex("Acct", "ID", core.Int(1)); !errors.Is(err, core.ErrTxDone) {
		t.Fatalf("after abort: %v", err)
	}
}

// TestSSIStress exercises the SSI sweep path (hundreds of completions)
// and re-checks serializability-by-construction invariants under random
// concurrent load.
func TestSSIStress(t *testing.T) {
	db := openKV(t, core.SerializableSI, core.PlatformPostgres)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(seed int64) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 400; i++ {
				tx := db.Begin()
				k1 := (seed + int64(i)) % 2
				k2 := 1 - k1
				if _, err := tx.Get("T", core.Int(k1+1)); err != nil {
					tx.Abort()
					continue
				}
				if err := tx.Update("T", core.Int(k2+1), kv(k2+1, int64(i))); err != nil {
					tx.Abort()
					continue
				}
				_ = tx.Commit()
			}
		}(int64(w))
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	// The table must still be consistent (no torn versions).
	chk := db.Begin()
	_ = mustGetV(t, chk, 1)
	_ = mustGetV(t, chk, 2)
	chk.Abort()
}

// Property: under SI, a snapshot's reads are stable no matter what other
// transactions commit in between (repeatable reads over random update
// traffic).
func TestSnapshotStabilityProperty(t *testing.T) {
	db := openKV(t, core.SnapshotFUW, core.PlatformPostgres)
	f := func(writes []uint8) bool {
		reader := db.Begin()
		before1 := mustGetVQuiet(reader, 1)
		before2 := mustGetVQuiet(reader, 2)
		for _, w := range writes {
			tx := db.Begin()
			k := int64(w%2) + 1
			v := mustGetVQuiet(tx, k)
			if tx.Update("T", core.Int(k), kv(k, v+1)) != nil {
				tx.Abort()
				continue
			}
			if tx.Commit() != nil {
				continue
			}
		}
		after1 := mustGetVQuiet(reader, 1)
		after2 := mustGetVQuiet(reader, 2)
		reader.Abort()
		return before1 == after1 && before2 == after2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestVersionChainsStayOrdered asserts the storage invariant after churn:
// committed CSNs decrease strictly along every chain.
func TestVersionChainsStayOrdered(t *testing.T) {
	db := openKV(t, core.SnapshotFUW, core.PlatformPostgres)
	for i := 0; i < 50; i++ {
		tx := db.Begin()
		v := mustGetVQuiet(tx, 1)
		if tx.Update("T", core.Int(1), kv(1, v+1)) != nil {
			tx.Abort()
			continue
		}
		_ = tx.Commit()
	}
	// Walk the chain through the storage layer.
	tbl, err := db.store.Table("T")
	if err != nil {
		t.Fatal(err)
	}
	row := tbl.Row(core.Int(1))
	prev := ^uint64(0)
	for v := row.Head(); v != nil; v = v.Prev {
		c := v.CSN()
		if c == 0 {
			t.Fatal("uncommitted version left behind")
		}
		if c >= prev {
			t.Fatalf("chain not strictly ordered: %d then %d", prev, c)
		}
		prev = c
	}
}

package engine

import (
	"testing"

	"sicost/internal/core"
)

// benchDB builds a DB for benchmarking: no simulated costs, table T
// preloaded with rows keys [0,rows).
func benchDB(b *testing.B, mode core.CCMode, rows int64) *DB {
	b.Helper()
	db := Open(Config{Mode: mode, Platform: core.PlatformPostgres})
	if err := db.CreateTable(kvSchema("T")); err != nil {
		b.Fatal(err)
	}
	tx := db.Begin()
	for k := int64(0); k < rows; k++ {
		if err := tx.Insert("T", kv(k, k)); err != nil {
			b.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(db.Close)
	return db
}

// benchCommit measures the full uncontended transaction cycle for one
// concurrency-control mode: begin, read one row, update another row,
// commit. This is the common path every SmallBank transaction pays, so
// the per-mode deltas here are the engine-side "cost of serializability"
// the paper's §V throughput figures rest on.
func benchCommit(b *testing.B, mode core.CCMode) {
	const rows = 1024
	db := benchDB(b, mode, rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := int64(i) % rows
		tx := db.Begin()
		if _, err := tx.Get("T", core.Int(k)); err != nil {
			b.Fatal(err)
		}
		wk := (k + 1) % rows
		if err := tx.Update("T", core.Int(wk), kv(wk, int64(i))); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCommitSI(b *testing.B)   { benchCommit(b, core.SnapshotFUW) }
func BenchmarkCommitS2PL(b *testing.B) { benchCommit(b, core.Strict2PL) }
func BenchmarkCommitSSI(b *testing.B)  { benchCommit(b, core.SerializableSI) }

// BenchmarkCommitReadOnly isolates the read path: SSI must track read
// sets and 2PL must take S locks, while SI reads are lock-free.
func BenchmarkCommitReadOnly(b *testing.B) {
	for _, mc := range []struct {
		name string
		mode core.CCMode
	}{
		{"SI", core.SnapshotFUW},
		{"S2PL", core.Strict2PL},
		{"SSI", core.SerializableSI},
	} {
		b.Run(mc.name, func(b *testing.B) {
			const rows = 1024
			db := benchDB(b, mc.mode, rows)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := db.Begin()
				if _, err := tx.Get("T", core.Int(int64(i)%rows)); err != nil {
					b.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

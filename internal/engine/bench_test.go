package engine

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sicost/internal/admission"
	"sicost/internal/core"
	"sicost/internal/wal"
)

// benchDB builds a DB for benchmarking: no simulated costs, table T
// preloaded with rows keys [0,rows).
func benchDB(b *testing.B, mode core.CCMode, rows int64) *DB {
	b.Helper()
	db := Open(Config{Mode: mode, Platform: core.PlatformPostgres})
	if err := db.CreateTable(kvSchema("T")); err != nil {
		b.Fatal(err)
	}
	tx := db.Begin()
	for k := int64(0); k < rows; k++ {
		if err := tx.Insert("T", kv(k, k)); err != nil {
			b.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(db.Close)
	return db
}

// benchCommit measures the full uncontended transaction cycle for one
// concurrency-control mode: begin, read one row, update another row,
// commit. This is the common path every SmallBank transaction pays, so
// the per-mode deltas here are the engine-side "cost of serializability"
// the paper's §V throughput figures rest on.
func benchCommit(b *testing.B, mode core.CCMode) {
	const rows = 1024
	db := benchDB(b, mode, rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := int64(i) % rows
		tx := db.Begin()
		if _, err := tx.Get("T", core.Int(k)); err != nil {
			b.Fatal(err)
		}
		wk := (k + 1) % rows
		if err := tx.Update("T", core.Int(wk), kv(wk, int64(i))); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCommitSI(b *testing.B)   { benchCommit(b, core.SnapshotFUW) }
func BenchmarkCommitS2PL(b *testing.B) { benchCommit(b, core.Strict2PL) }
func BenchmarkCommitSSI(b *testing.B)  { benchCommit(b, core.SerializableSI) }

// benchModes enumerates the three engine modes the parallel benchmarks
// sweep.
var benchModes = []struct {
	name string
	mode core.CCMode
}{
	{"SI", core.SnapshotFUW},
	{"S2PL", core.Strict2PL},
	{"SSI", core.SerializableSI},
}

// benchCommitParallel measures the commit cycle under `workers`
// concurrent committers on uniformly drawn keys. Low data contention by
// construction (4096 rows), so the measured slope is the engine's
// synchronization scalability — the lock-table and commit-sequencing
// paths — not FUW conflict behaviour. Retriable aborts (rare on the
// uniform mix, more common for SSI) are retried with fresh keys and
// counted via the aborts/op metric.
func benchCommitParallel(b *testing.B, mode core.CCMode, workers int) {
	const rows = 4096
	db := benchDB(b, mode, rows)
	// RunParallel spawns p*GOMAXPROCS goroutines; pick p so the total is
	// at least `workers` (exact when GOMAXPROCS divides it).
	p := (workers + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0)
	b.SetParallelism(p)
	var seed, aborts atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(42 + seed.Add(1)))
		for pb.Next() {
			for {
				k := rng.Int63n(rows)
				wk := rng.Int63n(rows)
				tx := db.Begin()
				_, err := tx.Get("T", core.Int(k))
				if err == nil {
					err = tx.Update("T", core.Int(wk), kv(wk, k))
				}
				if err == nil {
					err = tx.Commit()
				}
				if err == nil {
					break
				}
				tx.Abort()
				if !core.IsRetriable(err) {
					b.Error(err)
					return
				}
				aborts.Add(1)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(aborts.Load())/float64(b.N), "aborts/op")
}

// BenchmarkCommitParallel is the multi-core scaling benchmark: each mode
// at 1-, 4- and 16-way concurrency. The g16 uniform-key point is the
// acceptance gauge for the sharded lock table (BENCH_engine.json).
func BenchmarkCommitParallel(b *testing.B) {
	for _, mc := range benchModes {
		for _, workers := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/g%d", mc.name, workers), func(b *testing.B) {
				benchCommitParallel(b, mc.mode, workers)
			})
		}
	}
}

// BenchmarkCommitParallelHot is the adversarial counterpart: every
// transaction updates the same row, so the engine's behaviour is
// conflict-dominated (FUW aborts under SI/SSI, lock convoys under 2PL).
// It bounds how much sharding can help when the workload itself
// serializes.
func BenchmarkCommitParallelHot(b *testing.B) {
	for _, mc := range benchModes {
		b.Run(mc.name, func(b *testing.B) {
			const rows = 64
			db := benchDB(b, mc.mode, rows)
			var seed, aborts atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(7 + seed.Add(1)))
				for pb.Next() {
					for {
						tx := db.Begin()
						err := tx.Update("T", core.Int(0), kv(0, rng.Int63()))
						if err == nil {
							err = tx.Commit()
						}
						if err == nil {
							break
						}
						tx.Abort()
						if !core.IsRetriable(err) {
							b.Error(err)
							return
						}
						aborts.Add(1)
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(aborts.Load())/float64(b.N), "aborts/op")
		})
	}
}

// BenchmarkCommitDurable prices durability on the serial commit cycle
// (begin, read, update, commit). latency-only is the pre-durability
// WAL: the flush loop simulates group-commit latency but persists
// nothing. mem adds the record encoding and CRC32C framing into an
// in-memory device, so mem-latency is the pure codec cost. file adds
// the OS write of each flushed batch to a real log file.
func BenchmarkCommitDurable(b *testing.B) {
	for _, v := range []struct {
		name string
		dev  func(b *testing.B) wal.LogDevice
	}{
		{"latency-only", func(b *testing.B) wal.LogDevice { return nil }},
		{"mem", func(b *testing.B) wal.LogDevice { return wal.NewMemDevice() }},
		{"file", func(b *testing.B) wal.LogDevice {
			dev, err := wal.OpenFileDevice(filepath.Join(b.TempDir(), "bench.wal"))
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { dev.Close() })
			return dev
		}},
	} {
		b.Run(v.name, func(b *testing.B) {
			const rows = 1024
			db := Open(Config{
				Mode: core.SnapshotFUW, Platform: core.PlatformPostgres,
				WAL: wal.Config{Device: v.dev(b)},
			})
			b.Cleanup(db.Close)
			if err := db.CreateTable(kvSchema("T")); err != nil {
				b.Fatal(err)
			}
			tx := db.Begin()
			for k := int64(0); k < rows; k++ {
				if err := tx.Insert("T", kv(k, k)); err != nil {
					b.Fatal(err)
				}
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := int64(i) % rows
				tx := db.Begin()
				if _, err := tx.Get("T", core.Int(k)); err != nil {
					b.Fatal(err)
				}
				wk := (k + 1) % rows
				if err := tx.Update("T", core.Int(wk), kv(wk, int64(i))); err != nil {
					b.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCommitDurableMPL16 prices group commit under contention for
// the device: 16 committers on disjoint key stripes against a real log
// file. baseline pays one fsync per MaxBatch-sized flush group (the
// pre-coalescing flush loop, Config.SyncEveryGroup); coalesced covers
// every group queued during the previous fsync with ONE device sync;
// async publishes before durability and rides the same coalesced syncs
// off the commit path; segments adds rotation every 256KiB. The
// commits/sync metric is the tentpole's acceptance gate: coalesced must
// beat baseline ≥4× at this MPL.
func BenchmarkCommitDurableMPL16(b *testing.B) {
	const (
		mpl    = 16
		stripe = 64
		rows   = mpl * stripe
	)
	fileDev := func(b *testing.B) wal.LogDevice {
		dev, err := wal.OpenFileDevice(filepath.Join(b.TempDir(), "bench.wal"))
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { dev.Close() })
		return dev
	}
	segDev := func(b *testing.B) wal.LogDevice {
		dev, err := wal.OpenSegmentLog(b.TempDir(), 256<<10)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { dev.Close() })
		return dev
	}
	for _, v := range []struct {
		name     string
		dev      func(b *testing.B) wal.LogDevice
		baseline bool // one sync per flush group (pre-coalescing loop)
		async    bool
	}{
		{"baseline-file", fileDev, true, false},
		{"coalesced-file", fileDev, false, false},
		{"async-file", fileDev, false, true},
		{"segments-file", segDev, false, false},
	} {
		b.Run(v.name, func(b *testing.B) {
			// FsyncLatency models a realistic ~200µs device sync on top of
			// the real file I/O: tmpfs fsyncs complete in microseconds, so
			// without it no queue forms behind the sync and every variant
			// degenerates to one commit per window. MaxBatch 1 makes the
			// baseline the classic fsync-per-commit loop.
			db := Open(Config{
				Mode: core.SnapshotFUW, Platform: core.PlatformPostgres,
				WAL: wal.Config{
					Device: v.dev(b), MaxBatch: 1, SyncEveryGroup: v.baseline,
					FsyncLatency: 200 * time.Microsecond,
				},
				AsyncCommit: v.async,
			})
			b.Cleanup(db.Close)
			if err := db.CreateTable(kvSchema("T")); err != nil {
				b.Fatal(err)
			}
			tx := db.Begin()
			for k := int64(0); k < rows; k++ {
				if err := tx.Insert("T", kv(k, k)); err != nil {
					b.Fatal(err)
				}
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
			pre := db.WAL().Stats()
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < mpl; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					// Disjoint stripes: no serialization aborts pollute the
					// durability price.
					for i := 0; i < b.N/mpl; i++ {
						k := int64(w*stripe + i%stripe)
						tx := db.Begin()
						if _, err := tx.Get("T", core.Int(k)); err != nil {
							b.Error(err)
							return
						}
						if err := tx.Update("T", core.Int(k), kv(k, int64(i))); err != nil {
							b.Error(err)
							return
						}
						if err := tx.Commit(); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			db.WAL().Drain()
			s := db.WAL().Stats()
			if syncs := s.Syncs - pre.Syncs; syncs > 0 {
				b.ReportMetric(float64(s.Records-pre.Records)/float64(syncs), "commits/sync")
			}
		})
	}
}

// BenchmarkCommitCheckpointMPL16 prices checkpoint interference on the
// commit path: 16 committers on disjoint stripes against a file device
// (simulated 200µs sync), with a deliberately large cold table so the
// checkpoint has real work to do. none is the interference-free
// baseline; stw takes a stop-the-world Checkpoint every 25ms — every
// commit stalls behind the full snapshot and rewrite, which is the
// pause the fuzzy machinery exists to kill; fuzzy runs the log-growth
// scheduler taking incremental links concurrently with the committers,
// holding the barrier only to cut and append a begin marker. The
// p99-ns metric is the acceptance gate: fuzzy must stay within 2× of
// none at this MPL (stw is the contrast, typically an order of
// magnitude worse).
func BenchmarkCommitCheckpointMPL16(b *testing.B) {
	const (
		mpl    = 16
		stripe = 64
		hot    = mpl * stripe
		cold   = 16384 // rows only the checkpoint touches
	)
	p99 := func(ns []int64) float64 {
		if len(ns) == 0 {
			return 0
		}
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		return float64(ns[(len(ns)-1)*99/100])
	}
	for _, v := range []struct {
		name  string
		stw   bool
		fuzzy bool
	}{
		{"none", false, false},
		{"stw", true, false},
		{"fuzzy", false, true},
	} {
		b.Run(v.name, func(b *testing.B) {
			dev, err := wal.OpenFileDevice(filepath.Join(b.TempDir(), "bench.wal"))
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { dev.Close() })
			cfg := Config{
				Mode: core.SnapshotFUW, Platform: core.PlatformPostgres,
				WAL: wal.Config{Device: dev, FsyncLatency: 200 * time.Microsecond},
			}
			if v.fuzzy {
				cfg.CheckpointLogBytes = 128 << 10
			}
			db := Open(cfg)
			b.Cleanup(db.Close)
			if err := db.CreateTable(kvSchema("T")); err != nil {
				b.Fatal(err)
			}
			tx := db.Begin()
			for k := int64(0); k < hot+cold; k++ {
				if err := tx.Insert("T", kv(k, k)); err != nil {
					b.Fatal(err)
				}
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
			stop := make(chan struct{})
			var ckptWG sync.WaitGroup
			if v.stw {
				ckptWG.Add(1)
				go func() {
					defer ckptWG.Done()
					t := time.NewTicker(25 * time.Millisecond)
					defer t.Stop()
					for {
						select {
						case <-stop:
							return
						case <-t.C:
							if _, err := db.Checkpoint(); err != nil {
								return
							}
						}
					}
				}()
			}
			lats := make([][]int64, mpl)
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < mpl; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < b.N/mpl; i++ {
						k := int64(w*stripe + i%stripe)
						t0 := time.Now()
						tx := db.Begin()
						if _, err := tx.Get("T", core.Int(k)); err != nil {
							b.Error(err)
							return
						}
						if err := tx.Update("T", core.Int(k), kv(k, int64(i))); err != nil {
							b.Error(err)
							return
						}
						if err := tx.Commit(); err != nil {
							b.Error(err)
							return
						}
						lats[w] = append(lats[w], time.Since(t0).Nanoseconds())
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			close(stop)
			ckptWG.Wait()
			var all []int64
			for _, l := range lats {
				all = append(all, l...)
			}
			b.ReportMetric(p99(all), "p99-ns")
			cs := db.CheckpointStats()
			if v.fuzzy {
				b.ReportMetric(float64(cs.Links), "links")
			}
			if cs.PauseNS > 0 && len(all) > 0 {
				b.ReportMetric(float64(cs.PauseNS)/float64(len(all)), "pause-ns/op")
			}
		})
	}
}

// BenchmarkCommitReadOnly isolates the read path: SSI must track read
// sets and 2PL must take S locks, while SI reads are lock-free.
func BenchmarkCommitReadOnly(b *testing.B) {
	for _, mc := range []struct {
		name string
		mode core.CCMode
	}{
		{"SI", core.SnapshotFUW},
		{"S2PL", core.Strict2PL},
		{"SSI", core.SerializableSI},
	} {
		b.Run(mc.name, func(b *testing.B) {
			const rows = 1024
			db := benchDB(b, mc.mode, rows)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := db.Begin()
				if _, err := tx.Get("T", core.Int(int64(i)%rows)); err != nil {
					b.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBeginAdmitted prices the admission gate on the transaction
// cycle. The off case is the acceptance budget: a database without
// Config.Admission must pay nothing new at Begin (the gate pointer is
// nil, one branch). The on case measures the uncontended fast path — an
// atomic-free mutex acquire/release pair per Begin/endTx with the limit
// never reached — plus the controller ticking in the background.
func BenchmarkBeginAdmitted(b *testing.B) {
	run := func(b *testing.B, adm *admission.Config) {
		const rows = 1024
		db := Open(Config{Mode: core.SnapshotFUW, Platform: core.PlatformPostgres, Admission: adm})
		b.Cleanup(db.Close)
		if err := db.CreateTable(kvSchema("T")); err != nil {
			b.Fatal(err)
		}
		tx := db.Begin()
		for k := int64(0); k < rows; k++ {
			if err := tx.Insert("T", kv(k, k)); err != nil {
				b.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := int64(i) % rows
			tx := db.Begin()
			if _, err := tx.Get("T", core.Int(k)); err != nil {
				b.Fatal(err)
			}
			wk := (k + 1) % rows
			if err := tx.Update("T", core.Int(wk), kv(wk, int64(i))); err != nil {
				b.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) {
		run(b, &admission.Config{InitialLimit: 64, MinLimit: 64, MaxLimit: 64})
	})
}

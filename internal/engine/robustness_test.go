package engine

import (
	"errors"
	"sync"
	"testing"
	"time"

	"sicost/internal/core"
	"sicost/internal/faultinject"
	"sicost/internal/storage"
)

// openFaultyKV is openKV with a fault registry wired in (specs are armed
// by the caller after the load, so seeding runs fault-free).
func openFaultyKV(t *testing.T, mode core.CCMode) (*DB, *faultinject.Registry) {
	t.Helper()
	reg := faultinject.New(1)
	db := Open(Config{Mode: mode, Platform: core.PlatformPostgres, Faults: reg})
	if err := db.CreateTable(kvSchema("T")); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	for k, v := range map[int64]int64{1: 100, 2: 200} {
		if err := tx.Insert("T", kv(k, v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return db, reg
}

func TestLockWaitTimeout(t *testing.T) {
	db := Open(Config{Mode: core.Strict2PL, Platform: core.PlatformPostgres,
		LockWaitTimeout: 20 * time.Millisecond})
	defer db.Close()
	if err := db.CreateTable(kvSchema("T")); err != nil {
		t.Fatal(err)
	}
	seed := db.Begin()
	if err := seed.Insert("T", kv(1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	holder := db.Begin()
	mustSetV(t, holder, 1, 101)

	waiter := db.Begin()
	start := time.Now()
	err := waiter.Update("T", core.Int(1), kv(1, 102))
	elapsed := time.Since(start)
	if !errors.Is(err, core.ErrLockTimeout) {
		t.Fatalf("blocked update: %v, want ErrLockTimeout", err)
	}
	if elapsed < 15*time.Millisecond {
		t.Fatalf("timed out after only %v", elapsed)
	}
	if !core.IsRetriable(err) {
		t.Fatal("lock timeout must be retriable")
	}
	if core.ClassifyAbort(err) != core.AbortLockTimeout {
		t.Fatalf("abort class = %v", core.ClassifyAbort(err))
	}
	waiter.Abort()

	// The holder is unaffected; after its commit a fresh writer gets the
	// lock immediately.
	if err := holder.Commit(); err != nil {
		t.Fatal(err)
	}
	again := db.Begin()
	if err := again.Update("T", core.Int(1), kv(1, 103)); err != nil {
		t.Fatalf("post-timeout acquire: %v", err)
	}
	if err := again.Commit(); err != nil {
		t.Fatal(err)
	}
	if held, queued := db.LockAudit(); held != 0 || queued != 0 {
		t.Fatalf("lock leak after timeout: %d held, %d queued", held, queued)
	}
}

// TestLockWaitTimeoutPerTx overrides the database default on one
// transaction: an untimed waiter keeps waiting while the timed one
// gives up.
func TestLockWaitTimeoutPerTx(t *testing.T) {
	db := openKV(t, core.Strict2PL, core.PlatformPostgres)
	holder := db.Begin()
	mustSetV(t, holder, 1, 101)

	timed := db.Begin()
	timed.SetLockWaitTimeout(10 * time.Millisecond)
	if err := timed.Update("T", core.Int(1), kv(1, 102)); !errors.Is(err, core.ErrLockTimeout) {
		t.Fatalf("timed waiter: %v, want ErrLockTimeout", err)
	}
	timed.Abort()
	holder.Commit()
}

func TestCloseDrainsInflight(t *testing.T) {
	db := Open(Config{Mode: core.SnapshotFUW, Platform: core.PlatformPostgres})
	if err := db.CreateTable(kvSchema("T")); err != nil {
		t.Fatal(err)
	}
	seed := db.Begin()
	if err := seed.Insert("T", kv(1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	slow := db.Begin()
	mustSetV(t, slow, 1, 101)

	closed := make(chan struct{})
	go func() {
		db.Close()
		close(closed)
	}()
	// Close must block while slow is alive.
	select {
	case <-closed:
		t.Fatal("Close returned with a transaction in flight")
	case <-time.After(20 * time.Millisecond):
	}
	// New work is rejected while draining.
	rej := db.Begin()
	if err := rej.Insert("T", kv(9, 9)); !errors.Is(err, core.ErrShuttingDown) {
		t.Fatalf("begin during drain: %v, want ErrShuttingDown", err)
	}
	if err := rej.Commit(); !errors.Is(err, core.ErrShuttingDown) {
		t.Fatalf("commit of rejected tx: %v, want ErrShuttingDown", err)
	}
	if core.IsRetriable(core.ErrShuttingDown) {
		t.Fatal("ErrShuttingDown must not be retriable")
	}
	// The in-flight transaction finishes normally; Close then returns.
	if err := slow.Commit(); err != nil {
		t.Fatalf("in-flight commit during drain: %v", err)
	}
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return after the last transaction finished")
	}
	// Idempotent.
	db.Close()
}

func TestCloseConcurrentWithWorkload(t *testing.T) {
	db := Open(Config{Mode: core.SnapshotFUW, Platform: core.PlatformPostgres})
	if err := db.CreateTable(kvSchema("T")); err != nil {
		t.Fatal(err)
	}
	seed := db.Begin()
	for k := int64(0); k < 8; k++ {
		if err := seed.Insert("T", kv(k, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tx := db.Begin()
				k := int64((w + i) % 8)
				err := tx.Update("T", core.Int(k), kv(k, int64(i)))
				if err == nil {
					err = tx.Commit()
				}
				if err != nil {
					tx.Abort()
					if errors.Is(err, core.ErrShuttingDown) {
						return
					}
				}
			}
		}(w)
	}
	time.Sleep(10 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		db.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung under concurrent workload")
	}
	close(stop)
	wg.Wait()
}

func TestFaultPointsAbortCleanly(t *testing.T) {
	cases := []struct {
		name  string
		point string
		// op drives one transaction into the fault; returns the error.
		op func(db *DB) error
	}{
		{"begin", FaultBegin, func(db *DB) error {
			tx := db.Begin()
			defer tx.Abort()
			if err := tx.Insert("T", kv(9, 9)); err != nil {
				return err
			}
			return tx.Commit()
		}},
		{"lock-acquire", FaultLockAcquire, func(db *DB) error {
			tx := db.Begin()
			defer tx.Abort()
			if err := tx.Update("T", core.Int(1), kv(1, 1)); err != nil {
				return err
			}
			return tx.Commit()
		}},
		{"commit-stamp", FaultCommitStamp, func(db *DB) error {
			tx := db.Begin()
			defer tx.Abort()
			if err := tx.Update("T", core.Int(1), kv(1, 1)); err != nil {
				return err
			}
			return tx.Commit()
		}},
		{"row-read", storage.FaultRowRead, func(db *DB) error {
			tx := db.Begin()
			defer tx.Abort()
			_, err := tx.Get("T", core.Int(1))
			if err != nil {
				return err
			}
			return tx.Commit()
		}},
		{"row-write", storage.FaultRowWrite, func(db *DB) error {
			tx := db.Begin()
			defer tx.Abort()
			if err := tx.Update("T", core.Int(1), kv(1, 1)); err != nil {
				return err
			}
			return tx.Commit()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db, reg := openFaultyKV(t, core.Strict2PL)
			if err := reg.Arm(faultinject.Spec{Point: tc.point, Count: 1, Action: faultinject.ActError}); err != nil {
				t.Fatal(err)
			}
			err := tc.op(db)
			if !errors.Is(err, core.ErrInjected) {
				t.Fatalf("%s: got %v, want ErrInjected", tc.point, err)
			}
			if reg.Fired(tc.point) != 1 {
				t.Fatalf("%s fired %d times", tc.point, reg.Fired(tc.point))
			}
			if held, queued := db.LockAudit(); held != 0 || queued != 0 {
				t.Fatalf("%s leaked locks: %d held, %d queued", tc.point, held, queued)
			}
			// The engine is healthy afterwards (Count=1 exhausted).
			if err := tc.op(db); err != nil {
				t.Fatalf("%s: clean rerun failed: %v", tc.point, err)
			}
		})
	}
}

// TestFaultKeyFilter pins the filtered-injection path through the full
// stack: only reads of the targeted key fail.
func TestFaultKeyFilter(t *testing.T) {
	db, reg := openFaultyKV(t, core.SnapshotFUW)
	key := core.Int(2)
	if err := reg.Arm(faultinject.Spec{
		Point: storage.FaultRowRead, Table: "T", Key: &key, Action: faultinject.ActError,
	}); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	defer tx.Abort()
	if _, err := tx.Get("T", core.Int(1)); err != nil {
		t.Fatalf("untargeted key failed: %v", err)
	}
	if _, err := tx.Get("T", core.Int(2)); !errors.Is(err, core.ErrInjected) {
		t.Fatalf("targeted key: %v, want ErrInjected", err)
	}
}

// TestCSNDelayPointsAreDelayOnly arms error specs against the
// post-commit-point hooks: they must not fire (the commit is already
// visible there), and the commit must succeed.
func TestCSNDelayPointsAreDelayOnly(t *testing.T) {
	db, reg := openFaultyKV(t, core.SnapshotFUW)
	for _, p := range []string{FaultCSNAlloc, FaultCSNPublish} {
		if err := reg.Arm(faultinject.Spec{Point: p, Action: faultinject.ActError}); err != nil {
			t.Fatal(err)
		}
	}
	tx := db.Begin()
	mustSetV(t, tx, 1, 111)
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit with error specs on delay-only points: %v", err)
	}
	if reg.Fired(FaultCSNAlloc) != 0 || reg.Fired(FaultCSNPublish) != 0 {
		t.Fatal("error specs fired at delay-only points")
	}
	reg.Reset()
	for _, p := range []string{FaultCSNAlloc, FaultCSNPublish} {
		if err := reg.Arm(faultinject.Spec{Point: p, Action: faultinject.ActDelay, Delay: 5 * time.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	tx2 := db.Begin()
	mustSetV(t, tx2, 1, 112)
	start := time.Now()
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 8*time.Millisecond {
		t.Fatalf("delay specs did not stall the commit (took %v)", d)
	}
}

package engine

import (
	"fmt"

	"sicost/internal/core"
	"sicost/internal/storage"
	"sicost/internal/trace"
	"sicost/internal/wal"
)

// RecoveryReport summarizes what Recover rebuilt.
type RecoveryReport struct {
	// Log is the device-scan result: checkpoint found, redo frames,
	// torn bytes discarded.
	Log *wal.RecoveryInfo
	// Tables is the number of table definitions restored.
	Tables int
	// CheckpointRows counts rows restored from the checkpoint snapshot;
	// ReplayedCommits and ReplayedRows count the redo work after it.
	CheckpointRows  int
	ReplayedCommits int
	ReplayedRows    int
	// HighCSN is the restored commit-sequence high-water mark; the
	// first post-recovery commit gets HighCSN+1.
	HighCSN uint64
}

// Recover rebuilds a database from a log device: ARIES-style redo-only
// recovery over the committed row images the WAL persists. The scan
// truncates any torn tail (repairing the device in place), the last
// checkpoint snapshot is restored verbatim, commit frames beyond the
// checkpoint are replayed in CSN order, unique indexes are rebuilt from
// the recovered final state, and the CSN sequencer resumes from the
// recovered high-water mark. cfg configures the revived instance (mode,
// platform, cost model, faults, tracer); its WAL device is forced to
// dev, so the revived database keeps appending to the same log.
//
// Recovery is idempotent: recovering the same device twice — or a
// device and its post-repair copy — yields identical state, because the
// first pass's only write is the torn-tail truncation.
//
// Recovered versions carry Creator 0, an id no live transaction ever
// holds (transaction ids start at 1), so own-write visibility rules
// cannot confuse replayed rows with a resumed session's writes.
func Recover(dev wal.LogDevice, cfg Config) (*DB, *RecoveryReport, error) {
	info, err := wal.Recover(dev)
	if err != nil {
		return nil, nil, err
	}

	cfg.WAL.Device = dev
	db := Open(cfg)
	report := &RecoveryReport{Log: info, HighCSN: info.HighCSN}

	fail := func(err error) (*DB, *RecoveryReport, error) {
		db.Close()
		return nil, nil, err
	}

	// Table definitions. db.store.CreateTable, not db.CreateTable: the
	// schemas are already durable, and the DB-level method would append
	// duplicate DDL frames.
	for i := range info.Schemas {
		s := info.Schemas[i]
		if _, err := db.store.CreateTable(&s); err != nil {
			return fail(fmt.Errorf("engine: recover: %w", err))
		}
		report.Tables++
	}

	// Checkpoint snapshot: install every row verbatim, preserving its
	// commit CSN so the recovered version chain matches the crashed one.
	if info.Checkpoint != nil {
		for _, t := range info.Checkpoint.Tables {
			tbl, err := db.store.Table(t.Schema.Name)
			if err != nil {
				return fail(fmt.Errorf("engine: recover: %w", err))
			}
			for _, r := range t.Rows {
				if r.CSN == 0 || r.CSN > info.Checkpoint.CSN {
					return fail(fmt.Errorf("engine: recover: checkpoint row %s/%v has CSN %d outside (0, %d]",
						t.Schema.Name, r.Key, r.CSN, info.Checkpoint.CSN))
				}
				if err := installRecovered(tbl, r.Key, r.Rec, r.CSN); err != nil {
					return fail(err)
				}
				report.CheckpointRows++
			}
		}
	}

	// Redo replay, in CSN order. Per-row log order equals per-row CSN
	// order (the writer holds the row's X lock from write through
	// publication), so installing each commit's images in ascending CSN
	// leaves every chain newest-first, exactly as the live engine would.
	for _, c := range info.Commits {
		if c.CSN == 0 {
			return fail(fmt.Errorf("engine: recover: commit frame for tx %d carries CSN 0", c.TxID))
		}
		for _, ri := range c.Rows {
			tbl, err := db.store.Table(ri.Table)
			if err != nil {
				return fail(fmt.Errorf("engine: recover: commit %d: %w", c.CSN, err))
			}
			if err := installRecovered(tbl, ri.Key, ri.Rec, c.CSN); err != nil {
				return fail(err)
			}
			// Replayed keys enter the dirty epoch: the first
			// post-recovery delta link bases on the recovered cut, so it
			// must cover the redo work between the cut and the crash.
			tbl.MarkDirty(ri.Key)
			report.ReplayedRows++
		}
		report.ReplayedCommits++
	}

	// Unique secondary indexes are not logged; rebuild them from the
	// recovered final state. Creator 0 plus an immediate per-row Commit
	// stamps each entry with its row's CSN, so snapshot lookups behave
	// as before the crash.
	for _, name := range db.store.TableNames() {
		tbl, err := db.store.Table(name)
		if err != nil {
			return fail(err)
		}
		if len(tbl.Indexes()) == 0 {
			continue
		}
		for _, k := range tbl.Keys() {
			row := tbl.Row(k)
			if row == nil {
				continue
			}
			v := row.NewestCommitted()
			if v == nil || v.Rec == nil {
				continue
			}
			for _, ix := range tbl.Indexes() {
				if err := ix.Insert(0, v.Rec[ix.ColPos()], k); err != nil {
					return fail(fmt.Errorf("engine: recover: index rebuild on %s.%s: %w", name, ix.Column(), err))
				}
				ix.Commit(0, v.CSN())
			}
		}
	}

	// Sequencer restore: new snapshots see everything recovered, and
	// the next commit continues the CSN stream past the high-water mark.
	db.seqMu.Lock()
	db.nextCSN = info.HighCSN
	db.seqMu.Unlock()
	db.visibleCSN.Store(info.HighCSN)
	db.log.ResumeDurable(info.HighCSN)

	// Seed the fuzzy-checkpoint chain state: the next incremental link
	// bases on the recovered cut (the fold's tail), extending the chain
	// the log already holds. The retirement bound stays 0 — the root's
	// segment index is unknown after a restart — so no segment retires
	// until the next full link re-roots the chain.
	if info.Checkpoint != nil {
		db.ckptStateMu.Lock()
		db.chainBase = info.Checkpoint.CSN
		db.chainLinks = info.ChainLinks
		if db.chainLinks == 0 {
			db.chainLinks = 1 // legacy full-image root counts as the root link
		}
		db.chainRootSeg = 0
		db.ckptStateMu.Unlock()
	}

	if db.tracer.Enabled() {
		db.tracer.Emit(trace.Event{
			Kind: trace.EvRecovery, CSN: info.HighCSN,
			Depth: len(info.Commits), Bytes: info.ValidBytes,
		})
	}
	return db, report, nil
}

// installRecovered links one recovered after-image (nil rec =
// tombstone) at the head of a row's chain with its original CSN.
// Recovery is single-threaded, so Install's X-lock precondition is
// trivially met. Live images are schema-checked first: a log whose CRCs
// pass but whose payload disagrees with its own schema frames is
// corrupt, and recovery must reject it rather than panic later (e.g. in
// index rebuild, which indexes record columns by schema position).
func installRecovered(tbl *storage.Table, key core.Value, rec core.Record, csn uint64) error {
	if rec != nil {
		if err := tbl.Schema().CheckRecord(rec); err != nil {
			return fmt.Errorf("engine: recover: %w", err)
		}
		if tbl.Schema().Key(rec) != key {
			return fmt.Errorf("engine: recover: %s row logged under key %v has primary key %v",
				tbl.Name(), key, tbl.Schema().Key(rec))
		}
	}
	row := tbl.EnsureRow(key)
	v := &storage.Version{Rec: rec, Creator: 0}
	row.Install(v)
	v.MarkCommitted(csn)
	return nil
}

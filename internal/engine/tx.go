package engine

import (
	"errors"
	"fmt"
	"time"

	"sicost/internal/core"
	"sicost/internal/faultinject"
	"sicost/internal/storage"
	"sicost/internal/trace"
	"sicost/internal/wal"
)

// logBytesPerWrite approximates the WAL payload of one row update (tuple
// image plus header); it only feeds the simulated device's byte counter.
const logBytesPerWrite = 120

// writeRec tracks one row write of a transaction.
type writeRec struct {
	table *storage.Table
	key   core.Value
	row   *storage.Row
	ver   *storage.Version
}

// sfuRec tracks one select-for-update target.
type sfuRec struct {
	table *storage.Table
	key   core.Value
	row   *storage.Row
}

// Tx is one transaction. It is a session-like handle: use from a single
// goroutine, finish with Commit or Abort exactly once (Abort after a
// failed Commit is a no-op).
type Tx struct {
	db    *DB
	id    uint64
	start uint64
	tag   string
	done  bool
	// reg marks the handle as counted in the DB's shutdown drain;
	// cleared by endTx. Handles rejected during shutdown are never
	// registered.
	reg bool
	// admitted marks a handle holding an admission-gate slot; endTx
	// releases it along with the drain registration.
	admitted bool
	// lockWait bounds each row-lock wait (0 = forever); seeded from
	// Config.LockWaitTimeout, overridable per handle.
	lockWait time.Duration
	// deadline is the transaction's absolute time budget (zero = none);
	// seeded from Config.DefaultTxDeadline, overridable per handle.
	// Checked between statements, bounded into every lock wait, and
	// honoured by the sync-commit WAL flush-group wait.
	deadline time.Time

	writes []writeRec
	sfus   []sfuRec
	reads  []VersionRef

	// failedErr is set after a serialization failure or deadlock; like
	// PostgreSQL's "current transaction is aborted" state, every later
	// statement returns it and Commit rolls back instead.
	failedErr error

	// abortCause remembers the error that doomed the transaction (the
	// first retriable failure, or a commit-path error) so Abort can
	// attribute the rollback to its core.ClassifyAbort taxonomy class.
	// nil means a voluntary rollback (AbortNone).
	abortCause error

	nStmts int

	// asyncOverride is the per-transaction synchronous_commit override:
	// 0 follows Config.AsyncCommit, +1 forces async, -1 forces sync.
	asyncOverride int8
	// commitCSN / durable are set by an async Commit: the published CSN
	// and the WAL's durability future for its record.
	commitCSN uint64
	durable   <-chan error

	ssi *ssiTxn // nil unless SerializableSI
}

// closedDurable is the pre-resolved durability future handed out for
// sync commits, read-only commits, and logless configurations: by the
// time Commit returned, the transaction was as durable as it will ever
// be.
var closedDurable = func() <-chan error {
	ch := make(chan error)
	close(ch)
	return ch
}()

// ID returns the transaction id.
func (tx *Tx) ID() uint64 { return tx.id }

// Cost returns the database's strategy cost model (convenience for
// transaction programs that charge modification penalties).
func (tx *Tx) Cost() CostModel { return tx.db.cost }

// Platform returns the database's platform profile.
func (tx *Tx) Platform() core.Platform { return tx.db.cfg.Platform }

// StartCSN returns the snapshot's commit sequence number.
func (tx *Tx) StartCSN() uint64 { return tx.start }

// SetTag attaches an application label (e.g. the transaction type) that
// is passed through to the commit observer.
func (tx *Tx) SetTag(tag string) { tx.tag = tag }

// SetLockWaitTimeout overrides the database's lock-wait deadline for
// this transaction (0 = wait forever): PostgreSQL's per-session
// lock_timeout. A wait exceeding the deadline fails the statement with
// core.ErrLockTimeout, which is retriable — the standard discipline
// aborts and reruns the transaction.
func (tx *Tx) SetLockWaitTimeout(d time.Duration) { tx.lockWait = d }

// SetDeadline overrides the transaction's absolute deadline (zero
// clears it). Past the deadline every statement fails with
// core.ErrTxDeadline, a lock wait still pending is withdrawn with the
// same error, and a sync Commit whose WAL flush-group wait outlives the
// deadline withdraws its record and aborts cleanly if the record has
// not yet been handed to the device (if it has, the commit completes —
// fully durable — rather than half-published). Deadline expiry is not
// retriable: the interaction's time budget is spent.
func (tx *Tx) SetDeadline(d time.Time) { tx.deadline = d }

// Deadline returns the transaction's absolute deadline (zero = none).
func (tx *Tx) Deadline() time.Time { return tx.deadline }

// expired reports whether the transaction has a deadline and it has
// passed. One clock read; only called on paths that already cost a
// statement or a commit.
func (tx *Tx) expired() bool {
	return !tx.deadline.IsZero() && !time.Now().Before(tx.deadline)
}

// SetAsync overrides the database's async-commit default for this
// transaction (PostgreSQL's per-session synchronous_commit). With async
// on, Commit returns as soon as the commit is published; durability is
// awaited via Durable or DB.WaitDurable.
func (tx *Tx) SetAsync(async bool) {
	if async {
		tx.asyncOverride = 1
	} else {
		tx.asyncOverride = -1
	}
}

// asyncCommit reports whether this transaction's Commit skips the
// durability wait.
func (tx *Tx) asyncCommit() bool {
	switch tx.asyncOverride {
	case 1:
		return true
	case -1:
		return false
	}
	return tx.db.cfg.AsyncCommit
}

// CommitCSN returns the published commit sequence number after a
// successful updating Commit (0 for read-only commits and before
// Commit).
func (tx *Tx) CommitCSN() uint64 { return tx.commitCSN }

// Durable returns the commit's durability future: it yields nil once
// the commit record is on the platter, or the WAL's sticky error if the
// device died first (the commit is visible but will not survive a
// crash). For sync commits, read-only commits, and logless databases
// the future is already resolved.
func (tx *Tx) Durable() <-chan error {
	if tx.durable != nil {
		return tx.durable
	}
	return closedDurable
}

// acquire takes the row lock behind the FaultLockAcquire point and the
// transaction's lock-wait deadline.
func (tx *Tx) acquire(key storage.LockKey, mode storage.LockMode) error {
	if tx.db.faults != nil {
		if err := tx.db.faults.Fire(FaultLockAcquire, faultinject.Ctx{Tx: tx.id, Table: key.Table, Key: key.Key}); err != nil {
			return err
		}
	}
	return tx.db.locks.AcquireUntil(tx.id, key, mode, tx.lockWait, tx.deadline)
}

// Charge spends d of simulated CPU on behalf of this transaction, on top
// of the per-statement costs. The SmallBank strategies use it to apply
// the platform cost model's per-modification penalties.
func (tx *Tx) Charge(d time.Duration) {
	tx.db.machine.UseCPU(d)
}

// stmt charges one statement's base CPU and validates the handle.
func (tx *Tx) stmt() error {
	if tx.done {
		return core.ErrTxDone
	}
	if tx.failedErr != nil {
		return tx.failedErr
	}
	if tx.ssi != nil && tx.ssi.doomed() {
		return tx.fail(core.ErrSerialization)
	}
	if tx.expired() {
		return tx.fail(core.ErrTxDeadline)
	}
	tx.nStmts++
	tx.db.machine.UseCPU(tx.db.machine.Config().StmtCPU)
	return nil
}

// fail records a concurrency failure: the transaction can only abort
// from here on (PostgreSQL aborts the whole transaction on any error;
// we apply that to the retriable class, which is what the benchmark's
// retry discipline depends on). Deadline expiry poisons the handle the
// same way even though it is not retriable — a transaction past its
// deadline must not keep executing statements.
func (tx *Tx) fail(err error) error {
	if (core.IsRetriable(err) || errors.Is(err, core.ErrTxDeadline)) && tx.failedErr == nil {
		tx.failedErr = err
		tx.abortCause = err
	}
	return err
}

// traceConflict emits an EvConflict lifecycle event when tracing is on.
func (tx *Tx) traceConflict(cause uint8, table string, key core.Value) {
	if tx.db.tracer.Enabled() {
		tx.db.tracer.Emit(trace.Event{
			Kind: trace.EvConflict, Tx: tx.id,
			Table: table, Key: key, Reason: cause,
		})
	}
}

// traceStmt emits a statement-start lifecycle event (EvRead, EvWrite or
// EvSFU) when tracing is on. Emission precedes any lock wait the
// statement may enter, so each transaction's event order equals its
// statement dispatch order — the property detsim's trace replay relies
// on.
func (tx *Tx) traceStmt(kind trace.Kind, table string, key core.Value) {
	if tx.db.tracer.Enabled() {
		tx.db.tracer.Emit(trace.Event{Kind: kind, Tx: tx.id, Table: table, Key: key})
	}
}

func (tx *Tx) table(name string) (*storage.Table, error) {
	return tx.db.store.Table(name)
}

// Schema returns the named table's schema (catalog lookup; no
// statement cost).
func (tx *Tx) Schema(table string) (*core.Schema, error) {
	tbl, err := tx.table(table)
	if err != nil {
		return nil, err
	}
	return tbl.Schema(), nil
}

// visibleVersion resolves the version this transaction reads for a row,
// per the concurrency-control mode. Returns nil when no visible version
// exists.
func (tx *Tx) visibleVersion(row *storage.Row) *storage.Version {
	if tx.db.cfg.Mode == core.Strict2PL {
		// 2PL has no snapshots: read your own write, else the newest
		// committed version (locking makes this safe).
		if h := row.Head(); h != nil && h.Creator == tx.id && h.CSN() == 0 {
			return h
		}
		return row.NewestCommitted()
	}
	return row.Visible(tx.start, tx.id)
}

// recordRead registers a read for the observer/SSI. Reads of the
// transaction's own writes are not dependencies and are skipped. The
// EvReadVer event mirrors the recorded entry exactly (version CSN
// included), so a trace consumer can rebuild the dependency-relevant
// read set without the Observer hook.
func (tx *Tx) recordRead(tbl *storage.Table, key core.Value, v *storage.Version) {
	if v.Creator == tx.id && v.CSN() == 0 {
		return
	}
	tx.reads = append(tx.reads, VersionRef{Table: tbl.Name(), Key: key, CSN: v.CSN()})
	if tx.db.tracer.Enabled() {
		tx.db.tracer.Emit(trace.Event{Kind: trace.EvReadVer, Tx: tx.id, Table: tbl.Name(), Key: key, CSN: v.CSN()})
	}
}

// Get returns the record stored under key in table, as visible to this
// transaction. Under Strict2PL it first takes a shared lock.
func (tx *Tx) Get(table string, key core.Value) (core.Record, error) {
	if err := tx.stmt(); err != nil {
		return nil, err
	}
	tbl, err := tx.table(table)
	if err != nil {
		return nil, err
	}
	tx.traceStmt(trace.EvRead, table, key)
	if tx.db.cfg.Mode == core.Strict2PL {
		if err := tx.acquire(storage.LockKey{Table: table, Key: key}, storage.Shared); err != nil {
			return nil, tx.fail(err)
		}
	}
	row, err := tbl.ReadRow(tx.id, key)
	if err != nil {
		return nil, err
	}
	if row == nil {
		return nil, core.ErrNotFound
	}
	v := tx.visibleVersion(row)
	if v == nil || v.Rec == nil {
		return nil, core.ErrNotFound
	}
	if tx.ssi != nil {
		if err := tx.db.ssi.onRead(tx, table, key, row); err != nil {
			tx.traceConflict(trace.ConflictSSI, table, key)
			return nil, tx.fail(err)
		}
	}
	tx.recordRead(tbl, key, v)
	return v.Rec, nil
}

// GetByIndex resolves key through the unique secondary index on column
// and returns the indexed record (SmallBank's Account.Name→CustomerID
// hop is a direct PK read; this supports lookups the other way).
func (tx *Tx) GetByIndex(table, column string, val core.Value) (core.Record, error) {
	if err := tx.stmt(); err != nil {
		return nil, err
	}
	tbl, err := tx.table(table)
	if err != nil {
		return nil, err
	}
	for _, ix := range tbl.Indexes() {
		if ix.Column() != column {
			continue
		}
		snap := tx.start
		if tx.db.cfg.Mode == core.Strict2PL {
			snap = ^uint64(0)
		}
		pk, ok := ix.Lookup(snap, tx.id, val)
		if !ok {
			return nil, core.ErrNotFound
		}
		// Do not double-charge the statement cost for the inner read.
		tx.nStmts--
		return tx.Get(table, pk)
	}
	return nil, fmt.Errorf("engine: table %s has no unique index on %s", table, column)
}

// lockForWrite acquires the exclusive row lock and applies the
// First-Updater-Wins visibility check (SI modes): after the lock is
// granted — possibly after blocking behind a concurrent writer — the
// newest committed version must belong to this transaction's snapshot,
// otherwise the update targets a row concurrently updated and the
// transaction must abort with a serialization failure.
func (tx *Tx) lockForWrite(tbl *storage.Table, key core.Value, row *storage.Row) error {
	if err := tx.acquire(storage.LockKey{Table: tbl.Name(), Key: key}, storage.Exclusive); err != nil {
		return tx.fail(err)
	}
	if tx.db.cfg.Mode == core.Strict2PL {
		return nil // no version check: locks alone order 2PL writers
	}
	if nc := row.NewestCommitted(); nc != nil && nc.CSN() > tx.start {
		tx.traceConflict(trace.ConflictFUW, tbl.Name(), key)
		return tx.fail(core.ErrSerialization)
	}
	if tx.db.cfg.Platform == core.PlatformCommercial && row.LastSFUCommit() > tx.start {
		// A concurrent transaction select-for-updated this row and
		// committed: the commercial platform treats that like a write.
		tx.traceConflict(trace.ConflictSFUCommit, tbl.Name(), key)
		return tx.fail(core.ErrSerialization)
	}
	return nil
}

// Update replaces the record under key. The record must satisfy the
// schema and keep its primary key equal to key. Missing rows yield
// ErrNotFound; concurrent updates yield ErrSerialization (SI modes).
func (tx *Tx) Update(table string, key core.Value, rec core.Record) error {
	if err := tx.stmt(); err != nil {
		return err
	}
	tbl, err := tx.table(table)
	if err != nil {
		return err
	}
	if err := tbl.Schema().CheckRecord(rec); err != nil {
		return err
	}
	if tbl.Schema().Key(rec) != key {
		return fmt.Errorf("engine: update of %s changes primary key %v to %v", table, key, tbl.Schema().Key(rec))
	}
	tx.traceStmt(trace.EvWrite, table, key)
	row, err := tbl.WriteRow(tx.id, key)
	if err != nil {
		return err
	}
	if row == nil {
		return core.ErrNotFound
	}
	if err := tx.lockForWrite(tbl, key, row); err != nil {
		return err
	}
	v := tx.visibleVersion(row)
	if v == nil || v.Rec == nil {
		return core.ErrNotFound
	}
	if tx.ssi != nil {
		if err := tx.db.ssi.onWrite(tx, table, key); err != nil {
			tx.traceConflict(trace.ConflictSSI, table, key)
			return tx.fail(err)
		}
	}
	rec = rec.Clone()
	if row.UpdateOwn(tx.id, rec) {
		return nil // second write to the same row within this txn
	}
	ver := &storage.Version{Rec: rec, Creator: tx.id}
	row.Install(ver)
	tx.writes = append(tx.writes, writeRec{table: tbl, key: key, row: row, ver: ver})
	return nil
}

// Insert adds a new record; it fails with ErrUniqueViolation when a live
// row with the same primary key (or a duplicated unique column) exists.
func (tx *Tx) Insert(table string, rec core.Record) error {
	if err := tx.stmt(); err != nil {
		return err
	}
	tbl, err := tx.table(table)
	if err != nil {
		return err
	}
	if err := tbl.Schema().CheckRecord(rec); err != nil {
		return err
	}
	key := tbl.Schema().Key(rec)
	tx.traceStmt(trace.EvWrite, table, key)
	row, err := tbl.EnsureWriteRow(tx.id, key)
	if err != nil {
		return err
	}
	if err := tx.lockForWrite(tbl, key, row); err != nil {
		return err
	}
	if v := tx.visibleVersion(row); v != nil && v.Rec != nil {
		return core.ErrUniqueViolation
	}
	if nc := row.NewestCommitted(); nc != nil && nc.Rec != nil {
		// A live committed version outside our snapshot: the primary key
		// is taken even though we cannot see it.
		return core.ErrUniqueViolation
	}
	for _, ix := range tbl.Indexes() {
		if err := ix.Insert(tx.id, rec[ix.ColPos()], key); err != nil {
			return err
		}
	}
	if tx.ssi != nil {
		if err := tx.db.ssi.onWrite(tx, table, key); err != nil {
			tx.traceConflict(trace.ConflictSSI, table, key)
			return tx.fail(err)
		}
	}
	rec = rec.Clone()
	ver := &storage.Version{Rec: rec, Creator: tx.id}
	row.Install(ver)
	tx.writes = append(tx.writes, writeRec{table: tbl, key: key, row: row, ver: ver})
	return nil
}

// Delete removes the row under key (writing a tombstone version).
func (tx *Tx) Delete(table string, key core.Value) error {
	if err := tx.stmt(); err != nil {
		return err
	}
	tbl, err := tx.table(table)
	if err != nil {
		return err
	}
	tx.traceStmt(trace.EvWrite, table, key)
	row, err := tbl.WriteRow(tx.id, key)
	if err != nil {
		return err
	}
	if row == nil {
		return core.ErrNotFound
	}
	if err := tx.lockForWrite(tbl, key, row); err != nil {
		return err
	}
	v := tx.visibleVersion(row)
	if v == nil || v.Rec == nil {
		return core.ErrNotFound
	}
	for _, ix := range tbl.Indexes() {
		ix.Delete(tx.id, v.Rec[ix.ColPos()])
	}
	if tx.ssi != nil {
		if err := tx.db.ssi.onWrite(tx, table, key); err != nil {
			tx.traceConflict(trace.ConflictSSI, table, key)
			return tx.fail(err)
		}
	}
	if row.UpdateOwn(tx.id, nil) {
		return nil
	}
	ver := &storage.Version{Rec: nil, Creator: tx.id}
	row.Install(ver)
	tx.writes = append(tx.writes, writeRec{table: tbl, key: key, row: row, ver: ver})
	return nil
}

// ReadForUpdate is SELECT ... FOR UPDATE. On both platforms it takes the
// exclusive row lock and fails with ErrSerialization when the row was
// updated by a concurrent committed transaction. On PlatformCommercial
// the lock additionally acts like a write for conflict purposes: its
// commit is remembered on the row, so later concurrent writers abort —
// the paper's §II-C commercial semantics. On PlatformPostgres a committed
// select-for-update leaves no trace (the §II-C interleaving is allowed).
func (tx *Tx) ReadForUpdate(table string, key core.Value) (core.Record, error) {
	if err := tx.stmt(); err != nil {
		return nil, err
	}
	tbl, err := tx.table(table)
	if err != nil {
		return nil, err
	}
	tx.traceStmt(trace.EvSFU, table, key)
	row, err := tbl.ReadRow(tx.id, key)
	if err != nil {
		return nil, err
	}
	if row == nil {
		return nil, core.ErrNotFound
	}
	if err := tx.lockForWrite(tbl, key, row); err != nil {
		return nil, err
	}
	v := tx.visibleVersion(row)
	if v == nil || v.Rec == nil {
		return nil, core.ErrNotFound
	}
	if tx.ssi != nil {
		if err := tx.db.ssi.onRead(tx, table, key, row); err != nil {
			tx.traceConflict(trace.ConflictSSI, table, key)
			return nil, tx.fail(err)
		}
	}
	tx.recordRead(tbl, key, v)
	if tx.db.cfg.Platform == core.PlatformCommercial && tx.db.cfg.Mode != core.Strict2PL {
		tx.sfus = append(tx.sfus, sfuRec{table: tbl, key: key, row: row})
	}
	return v.Rec, nil
}

// ReadOnly reports whether the transaction has performed no writes (and,
// on the commercial platform, no select-for-updates).
func (tx *Tx) ReadOnly() bool { return len(tx.writes) == 0 && len(tx.sfus) == 0 }

// rowImages collects the final after-image of every row this
// transaction wrote, for the durable commit record. tx.writes holds one
// entry per distinct row (repeat writes go through Row.UpdateOwn and
// mutate the existing version in place), so w.ver.Rec is already the
// final image; a nil Rec is a delete tombstone. The images are read
// while the rows are still X-locked by this transaction and are never
// mutated after commit, so no copies are needed.
//
// Select-for-update re-stamps (tx.sfus) are deliberately absent: an SFU
// changes no row content, only the row's lastSFUCommit watermark, which
// exists to detect write conflicts against concurrent transactions —
// and every concurrent transaction dies with the crash, so the
// watermark is dead metadata to a recovered instance. An SFU-only
// commit still logs a (row-less) frame carrying its CSN, keeping the
// recovered sequencer's high-water mark exact.
func (tx *Tx) rowImages() []wal.RowImage {
	rows := make([]wal.RowImage, 0, len(tx.writes))
	for _, w := range tx.writes {
		rows = append(rows, wal.RowImage{Table: w.table.Name(), Key: w.key, Rec: w.ver.Rec})
	}
	return rows
}

// waitFlush waits for a sync commit's flush verdict, bounded by the
// transaction deadline. The commit must end fully durable or cleanly
// aborted, never half-published, so deadline expiry is only honoured
// while the record can still be torn from the log: if WAL.Withdraw wins
// (the record was still queued, no flush window claimed it) the commit
// fails with core.ErrTxDeadline and the caller rolls back exactly like
// an enqueue failure — versions unstamped, CSN published as an empty
// slot. If the record is already in flight, the verdict is awaited and
// the commit completes — late, but durable. Async commits never reach
// here: they publish first and carry their durability debt in the
// future.
func (tx *Tx) waitFlush(rec *wal.Record, done <-chan error) error {
	if tx.deadline.IsZero() {
		return <-done
	}
	rem := time.Until(tx.deadline)
	if rem > 0 {
		timer := time.NewTimer(rem)
		select {
		case err := <-done:
			timer.Stop()
			return err
		case <-timer.C:
		}
	}
	if tx.db.log.Withdraw(rec) {
		return core.ErrTxDeadline
	}
	return <-done
}

// Commit finishes the transaction. For updating transactions it waits
// for the simulated WAL (group commit), assigns the commit sequence
// number, stamps versions and releases locks. Read-only transactions
// pay none of that, which is the cost asymmetry the paper's strategies
// trade on. On error the transaction is aborted and the error returned.
func (tx *Tx) Commit() error {
	if tx.done {
		return core.ErrTxDone
	}
	if tx.failedErr != nil {
		// The transaction is in the aborted state (a serialization
		// failure or deadlock occurred); COMMIT acts as ROLLBACK, as in
		// PostgreSQL.
		err := tx.failedErr
		tx.abortCause = err
		tx.Abort()
		return err
	}
	if tx.ssi != nil && tx.ssi.doomed() {
		tx.traceConflict(trace.ConflictSSI, "", core.Value{})
		tx.abortCause = core.ErrSerialization
		tx.Abort()
		return core.ErrSerialization
	}
	if tx.expired() {
		// Past the deadline nothing may be made durable or visible:
		// versions are still unstamped and unpublished, so this is a
		// clean rollback, exactly like a failed statement.
		tx.abortCause = core.ErrTxDeadline
		tx.Abort()
		return core.ErrTxDeadline
	}

	// Select-for-update on the commercial platform generates redo for
	// the row locks (as Oracle does), so sfu-only transactions pay the
	// updater's commit path too.
	updating := len(tx.writes) > 0 || len(tx.sfus) > 0

	// Commit-latency metering is opt-in (SetMetricsEnabled): the two
	// clock reads stay off the default commit path.
	var commitStart time.Time
	if updating && tx.db.meterCommitLatency.Load() {
		commitStart = time.Now()
	}

	if !updating && tx.ssi != nil {
		// Enter the committing state: from here this transaction cannot
		// be picked as an SSI abort victim, and a doom that raced the
		// check above is caught now. Updating commits do this below,
		// inside the commit window but before their WAL write — a
		// doomed transaction must never make a commit frame durable.
		if err := tx.db.ssi.precommit(tx); err != nil {
			tx.traceConflict(trace.ConflictSSI, "", core.Value{})
			tx.abortCause = err
			tx.Abort()
			return err
		}
	}

	info := TxInfo{
		ID:       tx.id,
		StartCSN: tx.start,
		ReadOnly: len(tx.writes) == 0,
		Tag:      tx.tag,
		Reads:    tx.reads,
	}

	if updating {
		// Commit-time CPU of an updating transaction (log-record and
		// redo construction), charged before the device wait.
		tx.db.machine.UseCPU(tx.db.machine.Config().UpdaterCommitCPU)
		// The stamp fault fires before the CSN exists: the last point
		// where this commit can abort cleanly — versions unlinked,
		// index entries removed, locks released, waiters woken —
		// without touching the sequencer.
		if tx.db.faults != nil {
			if err := tx.db.faults.Fire(FaultCommitStamp, faultinject.Ctx{Tx: tx.id}); err != nil {
				tx.abortCause = err
				tx.Abort()
				return err
			}
		}
		// The wal/commit fault fires before the sequencer is touched: an
		// ActPanic here (a session crash at the commit point) unwinds
		// with no allocated-but-unpublished CSN and no barrier held, so
		// nothing needs compensating.
		if err := tx.db.log.CommitFault(tx.id); err != nil {
			tx.abortCause = err
			tx.Abort()
			return err
		}
		// SSI precommit must precede the log enqueue: recovery replays
		// every durable commit frame and there is no abort/compensation
		// record, so a transaction doomed here must abort having logged
		// nothing — a frame enqueued first could become durable and
		// resurrect its writes after a crash. Once precommit succeeds
		// the transaction is unabortable (a dangerous structure forming
		// during the device wait dooms the fallback victim instead), so
		// the frame enqueued next can never belong to an aborted
		// transaction. An enqueue or flush failure after precommit still
		// aborts cleanly: nothing was acknowledged durable, and
		// ssi.abort clears the committing state.
		if tx.ssi != nil {
			if err := tx.db.ssi.precommit(tx); err != nil {
				tx.traceConflict(trace.ConflictSSI, "", core.Value{})
				tx.abortCause = err
				tx.Abort()
				return err
			}
		}
		// Commit sequencing is two short critical sections around a
		// lock-free middle: allocate the CSN and enqueue the commit
		// record in one step (queue order = CSN order, the durability-
		// watermark invariant); wait for durability (sync mode); stamp
		// versions and index entries (safe without a global lock — every
		// stamped row is X-locked by this transaction, and new snapshots
		// cannot see the CSN until it is published); then publish in CSN
		// order. The whole window runs under the checkpoint barrier's
		// read side, so a checkpoint never cuts between a durable commit
		// and its publication.
		//
		// WAL before visibility (the default): the commit record —
		// carrying the CSN and the row after-images — must be durable
		// before the commit publishes. The reverse order would let a
		// later durable commit embed effects of this one while this one
		// is lost in a crash. Group commit coalesces the device waits of
		// concurrent committers into shared syncs; locks are held
		// through the wait, so a blocked FUW writer waits through our
		// fsync — exactly the PostgreSQL behaviour.
		//
		// Async mode (synchronous_commit=off) skips the wait: the commit
		// publishes immediately and the durability future resolves when
		// the record's covering sync lands. A crash in between loses the
		// commit even though the application saw it succeed — which is
		// why the record is flagged Async: the WAL must brick on its
		// failure rather than pretend the published commit never
		// happened.
		async := tx.asyncCommit()
		rec := &wal.Record{
			TxID:  tx.id,
			Bytes: logBytesPerWrite * (len(tx.writes) + len(tx.sfus)),
			Async: async,
		}
		if tx.db.log.Persistent() {
			rec.Rows = tx.rowImages()
		}
		tx.db.ckptMu.RLock()
		csn, done, err := tx.db.allocCSNEnqueue(rec)
		if err == nil && !async && done != nil {
			err = tx.waitFlush(rec, done)
		}
		if err != nil {
			// The CSN is allocated but nothing carries it: publish the
			// empty slot so successors do not wait forever, then roll
			// back (versions are still unstamped, so Abort unlinks them).
			tx.db.publishCSN(csn)
			tx.db.ckptMu.RUnlock()
			tx.abortCause = err
			tx.Abort()
			return err
		}
		for _, w := range tx.writes {
			w.ver.MarkCommitted(csn)
			info.Writes = append(info.Writes, VersionRef{Table: w.table.Name(), Key: w.key, CSN: csn})
		}
		// The committed write set, one EvWriteVer per row, emitted after
		// the CSN exists and before EvCommit (same shard, so per-tx FIFO
		// puts the set ahead of the commit event). Statement-level
		// EvWrite events cannot serve here: they over-approximate (a
		// failed statement still emitted one) and carry no CSN.
		if tx.db.tracer.Enabled() {
			for _, w := range tx.writes {
				tx.db.tracer.Emit(trace.Event{Kind: trace.EvWriteVer, Tx: tx.id, Table: w.table.Name(), Key: w.key, CSN: csn})
			}
		}
		seen := make(map[*storage.Table]bool)
		for _, w := range tx.writes {
			if !seen[w.table] {
				seen[w.table] = true
				for _, ix := range w.table.Indexes() {
					ix.Commit(tx.id, csn)
				}
			}
		}
		if tx.db.log.Persistent() {
			// Dirty-key tracking for fuzzy checkpoints, inside the
			// barrier's read side: a checkpoint cutting at or after csn
			// drains its epoch only once this window closes, so the link
			// at the cut covers every key this commit wrote.
			for _, w := range tx.writes {
				w.table.MarkDirty(w.key)
			}
		}
		// SFU watermarks are not durable (see rowImages): they only
		// gate conflicts with concurrent transactions, none of which
		// survive a crash.
		for _, s := range tx.sfus {
			s.row.NoteSFUCommit(csn)
			info.SFU = append(info.SFU, VersionRef{Table: s.table.Name(), Key: s.key, CSN: csn})
		}
		tx.db.publishCSN(csn)
		tx.db.ckptMu.RUnlock()
		// Delay-only: the commit is published; a stall here holds row
		// locks across an already-visible commit.
		tx.db.faults.FireDelayOnly(FaultCSNPublish, faultinject.Ctx{Tx: tx.id})
		info.CommitCSN = csn
		tx.commitCSN = csn
		if async {
			tx.durable = done
		}
	} else {
		// Read-only: logically commits at its snapshot.
		info.CommitCSN = tx.start
	}

	if tx.ssi != nil {
		tx.db.ssi.finish(tx, info.CommitCSN)
	}
	tx.db.locks.ReleaseAll(tx.id)
	tx.done = true
	tx.db.commits.Add(1)
	tx.db.txnMetrics.Commits.Add(1)
	if !commitStart.IsZero() {
		tx.db.txnMetrics.CommitLatency.Record(time.Since(commitStart))
	}
	if tx.db.tracer.Enabled() {
		tx.db.tracer.Emit(trace.Event{Kind: trace.EvCommit, Tx: tx.id, CSN: info.CommitCSN})
	}
	tx.db.endTx(tx)
	tx.db.notifyCommit(info)
	return nil
}

// Abort rolls the transaction back: uncommitted versions are unlinked,
// index entries removed, locks released. Abort after completion is a
// no-op, so `defer tx.Abort()` is safe alongside an explicit Commit.
func (tx *Tx) Abort() {
	if tx.done {
		return
	}
	for i := len(tx.writes) - 1; i >= 0; i-- {
		tx.writes[i].row.RemoveUncommitted(tx.id)
	}
	seen := make(map[*storage.Table]bool)
	for _, w := range tx.writes {
		if !seen[w.table] {
			seen[w.table] = true
			for _, ix := range w.table.Indexes() {
				ix.Abort(tx.id)
			}
		}
	}
	if tx.ssi != nil {
		tx.db.ssi.abort(tx)
	}
	tx.db.locks.ReleaseAll(tx.id)
	tx.done = true
	if tx.id != 0 {
		// Handles rejected at Begin (shutdown) never ran; they are not
		// aborted work.
		tx.db.aborts.Add(1)
		reason := core.ClassifyAbort(tx.abortCause)
		tx.db.txnMetrics.Aborts.Inc(reason)
		if tx.db.tracer.Enabled() {
			tx.db.tracer.Emit(trace.Event{Kind: trace.EvAbort, Tx: tx.id, Reason: uint8(reason)})
		}
	}
	tx.db.endTx(tx)
}

// Stmts returns the number of statements executed so far (diagnostics).
func (tx *Tx) Stmts() int { return tx.nStmts }

package engine

import (
	"os"
	"testing"
	"time"

	"sicost/internal/wal"
)

// TestCheckpointIncrementalChainRecovery builds a three-link chain —
// full root, two delta links — with commits between the links, and
// recovers it: the fold must land on the final cut, replay nothing that
// a link already covers, and reproduce the exact final state.
func TestCheckpointIncrementalChainRecovery(t *testing.T) {
	dev := wal.NewMemDevice()
	db := openDurableKV(t, dev) // rows {1:100, 2:200} at CSN 1
	if _, err := db.CheckpointIncremental(); err != nil {
		t.Fatal(err) // full root at cut 1
	}
	commitUpdate(t, db, 1, 111)
	if _, err := db.CheckpointIncremental(); err != nil {
		t.Fatal(err) // delta link at cut 2, covering key 1
	}
	commitUpdate(t, db, 2, 222)
	if cut, err := db.CheckpointIncremental(); err != nil || cut != 3 {
		t.Fatalf("third link: cut %d err %v, want cut 3", cut, err)
	}
	cs := db.CheckpointStats()
	if cs.Links != 3 || cs.FullLinks != 1 || cs.ChainLinks != 3 || cs.ChainBase != 3 {
		t.Fatalf("checkpoint stats: %+v", cs)
	}
	if got := db.WAL().Stats().DeltaCheckpoints; got != 3 {
		t.Fatalf("wal counted %d delta checkpoints, want 3", got)
	}
	db.Close()

	db2, rep, err := Recover(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if rep.Log.Checkpoint == nil || rep.Log.Checkpoint.CSN != 3 || rep.Log.ChainLinks != 3 {
		t.Fatalf("fold: %+v links %d, want cut 3 over 3 links", rep.Log.Checkpoint, rep.Log.ChainLinks)
	}
	if rep.ReplayedCommits != 0 {
		t.Fatalf("replayed %d commits, want 0 — every commit is inside a link", rep.ReplayedCommits)
	}
	if got := scanT(t, db2); got[1] != 111 || got[2] != 222 || len(got) != 2 {
		t.Fatalf("recovered state %v, want {1:111 2:222}", got)
	}
	if db2.CommitSeq() != 3 {
		t.Fatalf("recovered CSN %d, want 3", db2.CommitSeq())
	}
}

// TestCheckpointIncrementalTornLastLink is the fallback contract at the
// engine level: the log is cut at EVERY byte inside the final delta
// link, and each truncation must recover to the exact pre-crash state —
// the incomplete link never partially folds, and the commits it covered
// are replayed as redo from the previous link's cut instead.
func TestCheckpointIncrementalTornLastLink(t *testing.T) {
	dev := wal.NewMemDevice()
	db := openDurableKV(t, dev)
	if _, err := db.CheckpointIncremental(); err != nil {
		t.Fatal(err) // full root at cut 1
	}
	commitUpdate(t, db, 1, 111)
	if _, err := db.CheckpointIncremental(); err != nil {
		t.Fatal(err) // delta link at cut 2
	}
	commitUpdate(t, db, 2, 222)
	before := dev.Size()
	if _, err := db.CheckpointIncremental(); err != nil {
		t.Fatal(err) // delta link at cut 3 — the one we tear
	}
	after := dev.Size()
	db.Close()
	full, err := dev.Contents()
	if err != nil {
		t.Fatal(err)
	}

	for cut := before; cut < after; cut++ {
		torn := wal.NewMemDeviceBytes(append([]byte(nil), full[:cut]...))
		db2, rep, rerr := Recover(torn, Config{})
		if rerr != nil {
			t.Fatalf("cut %d: %v", cut, rerr)
		}
		if rep.Log.Checkpoint == nil || rep.Log.Checkpoint.CSN != 2 || rep.Log.ChainLinks != 2 {
			t.Fatalf("cut %d: fold %+v links %d, want fallback to cut 2 over 2 links",
				cut, rep.Log.Checkpoint, rep.Log.ChainLinks)
		}
		if rep.ReplayedCommits != 1 {
			t.Fatalf("cut %d: replayed %d commits, want commit 3 as redo again", cut, rep.ReplayedCommits)
		}
		if got := scanT(t, db2); got[1] != 111 || got[2] != 222 || len(got) != 2 {
			t.Fatalf("cut %d: recovered state %v, want {1:111 2:222}", cut, got)
		}
		db2.Close()
	}
}

// TestCheckpointChainMaxReRoots pins the re-root policy: with
// CheckpointChainMax=2 the third link must be written full again
// (Base 0), starting a fresh chain recovery folds without the old root.
func TestCheckpointChainMaxReRoots(t *testing.T) {
	dev := wal.NewMemDevice()
	db := Open(Config{WAL: wal.Config{Device: dev}, CheckpointChainMax: 2})
	if err := db.CreateTable(kvSchema("T")); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if err := tx.Insert("T", kv(1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 3; i++ {
		commitUpdate(t, db, 1, 100+i)
		if _, err := db.CheckpointIncremental(); err != nil {
			t.Fatal(err)
		}
	}
	cs := db.CheckpointStats()
	if cs.Links != 3 || cs.FullLinks != 2 || cs.ChainLinks != 1 {
		t.Fatalf("stats after re-root: %+v, want 3 links with 2 full and a fresh chain", cs)
	}
	db.Close()

	db2, rep, err := Recover(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if rep.Log.ChainLinks != 1 {
		t.Fatalf("recovered chain length %d, want 1 (the re-rooted full link)", rep.Log.ChainLinks)
	}
	if got := scanT(t, db2); got[1] != 102 {
		t.Fatalf("recovered state %v, want {1:102}", got)
	}
}

// TestCheckpointSchedulerRetiresSegments runs the whole retention loop
// live: the log-growth scheduler takes incremental checkpoints on its
// own, chain re-roots advance the retirement bound, covered segments
// are archived and deleted while commits keep flowing — and the
// surviving live directory alone recovers the exact final state. This
// is the bounded-log property -retire exists for.
func TestCheckpointSchedulerRetiresSegments(t *testing.T) {
	walDir, archDir := t.TempDir(), t.TempDir()
	sl, err := wal.OpenSegmentLog(walDir, 2048)
	if err != nil {
		t.Fatal(err)
	}
	db := Open(Config{
		WAL:                wal.Config{Device: sl},
		CheckpointLogBytes: 4096,
		CheckpointChainMax: 2,
		RetireSegments:     true,
		ArchiveDir:         archDir,
	})
	if err := db.CreateTable(kvSchema("T")); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	for k := int64(1); k <= 4; k++ {
		if err := tx.Insert("T", kv(k, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	i := int64(0)
	for {
		commitUpdate(t, db, 1+i%4, i)
		i++
		ws := db.WAL().Stats()
		if ws.RetiredSegments > 0 && ws.ArchivedSegments > 0 && db.CheckpointStats().Links > 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no retirement after %d commits: wal %+v ckpt %+v", i, ws, db.CheckpointStats())
		}
	}
	final := scanT(t, db)
	preSeq := db.CommitSeq()
	db.Close()

	arch, err := os.ReadDir(archDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(arch) == 0 {
		t.Fatal("retirement reported archived segments but the archive directory is empty")
	}

	sl2, err := wal.OpenSegmentLog(walDir, 2048)
	if err != nil {
		t.Fatal(err)
	}
	db2, rep, err := Recover(sl2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if rep.Log.Checkpoint == nil {
		t.Fatal("retired log recovered without a checkpoint — retirement outran the chain root")
	}
	if got := scanT(t, db2); len(got) != len(final) {
		t.Fatalf("recovered %d rows, want %d", len(got), len(final))
	} else {
		for k, v := range final {
			if got[k] != v {
				t.Fatalf("recovered state %v, want %v", got, final)
			}
		}
	}
	if db2.CommitSeq() != preSeq {
		t.Fatalf("recovered CSN %d, want %d", db2.CommitSeq(), preSeq)
	}
}

package experiments

import (
	"fmt"
	"strings"

	"sicost/internal/checker"
	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/sdg"
	"sicost/internal/smallbank"
	"sicost/internal/workload"
)

// runTable1 renders the paper's Table I (overview of tables updated with
// each option) from the strategy definitions, cross-checked against the
// SDG derivations.
func runTable1(cfg Config) (*Result, error) {
	cfg = cfg.Defaults()
	var b strings.Builder
	txns := []string{"Bal", "WC", "TS", "Amg", "DC"}
	fmt.Fprintf(&b, "%-22s", "Option/TX")
	for _, t := range txns {
		fmt.Fprintf(&b, " %-12s", t)
	}
	b.WriteString("\n")
	for _, s := range smallbank.Strategies() {
		if s.Name == "SI" || s.Name == "MaterializeWT-fixed" {
			continue
		}
		extra := s.ExtraUpdates()
		fmt.Fprintf(&b, "%-22s", s.Name)
		for _, t := range txns {
			cell := strings.Join(extra[t], "+")
			if cell == "" {
				cell = "-"
			}
			fmt.Fprintf(&b, " %-12s", cell)
		}
		b.WriteString("\n")
	}
	b.WriteString("\nConf = Conflict table, Sav = Saving, Check = Checking; (sfu) = select-for-update.\n")
	b.WriteString("Note: except for Option WT, all options introduce updates into the\noriginally read-only Balance transaction.\n")
	return &Result{
		ID: "table1", Title: "Table I: overview of tables updated with each option",
		Text: b.String(),
	}, nil
}

// runFig1 renders the SmallBank SDG analysis (Figure 1).
func runFig1(cfg Config) (*Result, error) {
	g, err := sdg.New(smallbank.BasePrograms()...)
	if err != nil {
		return nil, err
	}
	text := g.Describe() + "\nDOT:\n" + g.ToDOT("SmallBank")
	return &Result{ID: "fig1", Title: "Figure 1: SDG for the SmallBank benchmark", Text: text}, nil
}

// sdgFigure renders the post-modification SDGs for the given strategies.
func sdgFigure(id, title string, names []string) (*Result, error) {
	var b strings.Builder
	for _, name := range names {
		s, err := smallbank.ByName(name)
		if err != nil {
			return nil, err
		}
		progs, err := s.SDGPrograms()
		if err != nil {
			return nil, err
		}
		g, err := sdg.New(progs...)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "=== %s ===\n%s\n", name, g.Describe())
	}
	return &Result{ID: id, Title: title, Text: b.String()}, nil
}

func runFig2(cfg Config) (*Result, error) {
	return sdgFigure("fig2", "Figure 2: SDG for Option WT",
		[]string{"MaterializeWT", "PromoteWT-upd"})
}

func runFig3(cfg Config) (*Result, error) {
	return sdgFigure("fig3", "Figure 3: SDGs for Option BW",
		[]string{"MaterializeBW", "PromoteBW-upd"})
}

// scriptAnomaly drives the deterministic §III-C interleaving (the
// read-only anomaly of [19]) against a database running the given
// strategy:
//
//	begin(WC); TS deposits and commits; Bal reads the total;
//	WC writes the check on its stale snapshot and commits.
//
// It returns whether any step hit a serialization conflict and the
// checker's verdict over whatever committed.
func scriptAnomaly(db *engine.DB, s *smallbank.Strategy) (conflicted bool, rep *checker.Report, err error) {
	chk := checker.New()
	db.SetObserver(chk)
	name := smallbank.CustomerName(0)

	step := func(e error) (stop bool) {
		if e == nil {
			return false
		}
		if core.IsRetriable(e) {
			conflicted = true
			return true
		}
		err = e
		return true
	}

	wcTx := db.Begin()
	wcTx.SetTag("WC")
	abortWC := true
	defer func() {
		if abortWC {
			wcTx.Abort()
		}
	}()

	tsTx := db.Begin()
	tsTx.SetTag("TS")
	if e := smallbank.RunTransactSaving(tsTx, s, smallbank.Params{N1: name, V: 1_000_00}); e != nil {
		tsTx.Abort()
		if step(e) {
			return conflicted, chk.Analyze(), err
		}
	} else if step(tsTx.Commit()) {
		return conflicted, chk.Analyze(), err
	}

	balTx := db.Begin()
	balTx.SetTag("Bal")
	if _, e := smallbank.RunBalance(balTx, s, smallbank.Params{N1: name}); e != nil {
		balTx.Abort()
		if step(e) {
			return conflicted, chk.Analyze(), err
		}
	} else if step(balTx.Commit()) {
		return conflicted, chk.Analyze(), err
	}

	if e := smallbank.RunWriteCheck(wcTx, s, smallbank.Params{N1: name, V: 10_000_00}); e != nil {
		if step(e) {
			return conflicted, chk.Analyze(), err
		}
	} else {
		abortWC = false
		if step(wcTx.Commit()) {
			return conflicted, chk.Analyze(), err
		}
	}
	return conflicted, chk.Analyze(), err
}

// runAnomaly validates the paper's premise: the deterministic §III-C
// interleaving commits and corrupts under plain SI (the checker finds
// the read-only anomaly), while every sound repair strategy — and the
// SSI engine — forces a serialization failure instead; a stochastic
// hotspot sweep confirms the strategies stay serializable under load.
func runAnomaly(cfg Config) (*Result, error) {
	cfg = cfg.Defaults()
	var b strings.Builder

	freshDB := func(mode core.CCMode) (*engine.DB, error) {
		engCfg := ModeDB(mode, 0) // semantics only: free hardware
		engCfg.WAL.FsyncLatency = 0
		return newLoadedDB(engCfg, Config{Customers: 50, Seed: cfg.Seed}.Defaults())
	}

	// Deterministic script, plain SI: must commit and show the anomaly.
	db, err := freshDB(core.SnapshotFUW)
	if err != nil {
		return nil, err
	}
	conflicted, rep, err := scriptAnomaly(db, smallbank.StrategySI)
	db.Close()
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&b, "%-22s scripted interleaving: conflicted=%v verdict=%s\n",
		"SI", conflicted, rep.Classify())

	// Deterministic script under every sound strategy and under SSI:
	// must conflict, and whatever committed must be serializable.
	type variant struct {
		label    string
		strategy *smallbank.Strategy
		mode     core.CCMode
	}
	variants := []variant{}
	for _, s := range smallbank.Strategies() {
		if s.Name == "SI" || !s.SoundOn(core.PlatformPostgres) {
			continue
		}
		variants = append(variants, variant{s.Name, s, core.SnapshotFUW})
	}
	variants = append(variants, variant{"SSI engine (no mods)", smallbank.StrategySI, core.SerializableSI})
	for _, v := range variants {
		db, err := freshDB(v.mode)
		if err != nil {
			return nil, err
		}
		conflicted, rep, err := scriptAnomaly(db, v.strategy)
		db.Close()
		if err != nil {
			return nil, err
		}
		status := "PREVENTED"
		if !conflicted || !rep.Serializable {
			status = "FAILED"
		}
		fmt.Fprintf(&b, "%-22s scripted interleaving: conflicted=%v verdict=%-13s %s\n",
			v.label, conflicted, rep.Classify(), status)
	}

	// Stochastic confirmation on a pathological hotspot.
	stochastic := func(strategy *smallbank.Strategy, seed int64) (bool, string, error) {
		db, err := freshDB(core.SnapshotFUW)
		if err != nil {
			return false, "", err
		}
		defer db.Close()
		chk := checker.New()
		db.SetObserver(chk)
		if _, err := workload.Run(db, workload.Config{
			Strategy: strategy,
			MPL:      10, Customers: 50, HotspotSize: 2, HotspotProb: 1,
			Measure: cfg.Measure, Seed: seed,
		}); err != nil {
			return false, "", err
		}
		rep := chk.Analyze()
		return rep.Serializable, rep.Classify(), nil
	}
	siAnomalies := 0
	const runs = 4
	for i := 0; i < runs; i++ {
		ser, _, err := stochastic(smallbank.StrategySI, cfg.Seed+int64(i)*977)
		if err != nil {
			return nil, err
		}
		if !ser {
			siAnomalies++
		}
	}
	fmt.Fprintf(&b, "%-22s stochastic hotspot runs with a cycle: %d/%d\n", "SI", siAnomalies, runs)
	for _, s := range []*smallbank.Strategy{smallbank.StrategyMaterializeWT, smallbank.StrategyPromoteWTUpd, smallbank.StrategyPromoteBWUpd} {
		ser, _, err := stochastic(s, cfg.Seed)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "%-22s stochastic hotspot run serializable: %v\n", s.Name, ser)
	}

	return &Result{
		ID: "anomaly", Title: "Anomaly validation",
		Text: b.String(),
		Notes: []string{
			"Expected: SI commits the scripted interleaving (read-only anomaly); every strategy and the SSI engine force a serialization failure; stochastic strategy runs stay serializable.",
		},
	}, nil
}

package experiments

import (
	"fmt"
	"strings"

	"sicost/internal/metrics"
)

// ci95 is a local alias over repetition samples.
func ci95(xs []float64) (mean, ci float64) { return metrics.CI95(xs) }

// RenderTable renders a series-based result as an aligned text table:
// one row per x-label, one column per series, cells "mean ±ci".
func RenderTable(r *Result) string {
	if len(r.Series) == 0 {
		return r.Text
	}
	// Collect row labels in first-series order, appending any extras.
	var labels []string
	seen := map[string]bool{}
	for _, s := range r.Series {
		for _, p := range s.Points {
			if !seen[p.Label] {
				seen[p.Label] = true
				labels = append(labels, p.Label)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s", r.XLabel)
	for _, s := range r.Series {
		fmt.Fprintf(&b, " %18s", s.Name)
	}
	b.WriteString("\n")
	for _, l := range labels {
		fmt.Fprintf(&b, "%-18s", l)
		for _, s := range r.Series {
			p := s.Point(l)
			if p == nil {
				fmt.Fprintf(&b, " %18s", "-")
				continue
			}
			fmt.Fprintf(&b, " %18s", fmt.Sprintf("%.1f ±%.1f", p.Mean, p.CI))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderCSV renders a series-based result as CSV (label, then one
// mean/ci column pair per series).
func RenderCSV(r *Result) string {
	if len(r.Series) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString(csvEscape(r.XLabel))
	for _, s := range r.Series {
		fmt.Fprintf(&b, ",%s,%s_ci95", csvEscape(s.Name), csvEscape(s.Name))
	}
	b.WriteString("\n")
	var labels []string
	seen := map[string]bool{}
	for _, s := range r.Series {
		for _, p := range s.Points {
			if !seen[p.Label] {
				seen[p.Label] = true
				labels = append(labels, p.Label)
			}
		}
	}
	for _, l := range labels {
		b.WriteString(csvEscape(l))
		for _, s := range r.Series {
			p := s.Point(l)
			if p == nil {
				b.WriteString(",,")
				continue
			}
			fmt.Fprintf(&b, ",%.3f,%.3f", p.Mean, p.CI)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Render produces the full human-readable report of a result.
func Render(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n\n", r.Title)
	if r.Text != "" {
		b.WriteString(r.Text)
		if !strings.HasSuffix(r.Text, "\n") {
			b.WriteString("\n")
		}
	}
	if len(r.Series) > 0 {
		b.WriteString(RenderTable(r))
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

package experiments

import (
	"fmt"

	"sicost/internal/smallbank"
	"sicost/internal/workload"
)

// Default workload shape shared by Figures 4–6, 8 and 9 (§IV): 18000
// customers, hotspot 1000, 90% of transactions on the hotspot, uniform
// mix.
const (
	defaultHotspot = 1000
	defaultHotProb = 0.9
)

// hotspotFor clamps the standard hotspot to the loaded table size (quick
// runs load fewer customers).
func hotspotFor(cfg Config, want int) int {
	if want >= cfg.Customers {
		return cfg.Customers / 2
	}
	return want
}

// runFig4 — eliminating ALL vulnerable edges on PostgreSQL: SI vs
// MaterializeALL vs PromoteALL.
func runFig4(cfg Config) (*Result, error) {
	cfg = cfg.Defaults()
	return throughputFigure("fig4", "Figure 4: costs for SI-serializability when eliminating ALL vulnerable edges (PostgreSQL)",
		cfg, PostgresDB(cfg.Scale), workload.UniformMix(), hotspotFor(cfg, defaultHotspot), defaultHotProb,
		[]*smallbank.Strategy{
			smallbank.StrategySI,
			smallbank.StrategyMaterializeALL,
			smallbank.StrategyPromoteALL,
		},
		"Paper shape: PromoteALL starts ~20% below SI and climbs to ~95%;",
		"MaterializeALL plateaus ~25% below SI.",
	)
}

// fig5Strategies are the four targeted repairs compared in Figure 5.
func fig5Strategies() []*smallbank.Strategy {
	return []*smallbank.Strategy{
		smallbank.StrategySI,
		smallbank.StrategyMaterializeBW,
		smallbank.StrategyPromoteBWUpd,
		smallbank.StrategyMaterializeWT,
		smallbank.StrategyPromoteWTUpd,
	}
}

// runFig5a — absolute throughput for the WT and BW options (PostgreSQL).
func runFig5a(cfg Config) (*Result, error) {
	cfg = cfg.Defaults()
	return throughputFigure("fig5a", "Figure 5(a): throughput over MPL, Options WT and BW (PostgreSQL)",
		cfg, PostgresDB(cfg.Scale), workload.UniformMix(), hotspotFor(cfg, defaultHotspot), defaultHotProb,
		fig5Strategies(),
		"Paper shape: PromoteWT indistinguishable from SI; MaterializeWT ~90% of SI's peak;",
		"BW options pay ~20% at MPL=1 (Balance must hit the log disk) and converge upward.",
	)
}

// runFig5b — the same data normalized to SI.
func runFig5b(cfg Config) (*Result, error) {
	cfg = cfg.Defaults()
	abs, err := runFig5a(cfg)
	if err != nil {
		return nil, err
	}
	rel := relativeToFirst(abs, "fig5b", "Figure 5(b): throughput relative to SI (PostgreSQL)")
	rel.Notes = append(rel.Notes,
		"Paper shape: WT options ~100% at MPL=1; BW options ~80% at MPL=1 (the 5/4 disk-write ratio);",
		"the gap narrows as MPL grows — the reverse cost profile of Option WT.")
	return rel, nil
}

// runFig6 — serialization-failure abort rates per transaction type at
// MPL=20 on PostgreSQL.
func runFig6(cfg Config) (*Result, error) {
	cfg = cfg.Defaults()
	res := &Result{
		ID: "fig6", Title: "Figure 6: serialization-failure abort rate by transaction type, MPL=20 (PostgreSQL)",
		XLabel: "transaction type", YLabel: "% aborted (serialization failure)",
		Notes: []string{
			"Paper shape: PromoteBW-upd shows markedly higher abort rates for Balance,",
			"DepositChecking and Amalgamate than SI or the other strategies, because the",
			"promoted Balance write conflicts with every updater of Checking.",
		},
	}
	strategies := fig5Strategies()
	for _, s := range strategies {
		cfg.logf("fig6: strategy %s", s.Name)
		series := Series{Name: s.Name}
		byType := make([][]float64, smallbank.NumTxnTypes)
		for rep := 0; rep < cfg.Reps; rep++ {
			db, err := newLoadedDB(PostgresDB(cfg.Scale), cfg)
			if err != nil {
				return nil, err
			}
			out, err := workload.Run(db, workload.Config{
				Strategy: s,
				MPL:      20, Customers: cfg.Customers,
				HotspotSize: hotspotFor(cfg, defaultHotspot), HotspotProb: defaultHotProb,
				Ramp: cfg.Ramp, Measure: cfg.Measure,
				Seed: cfg.Seed + int64(rep+1)*104729,
			})
			db.Close()
			if err != nil {
				return nil, err
			}
			for t := 0; t < smallbank.NumTxnTypes; t++ {
				byType[t] = append(byType[t], 100*out.PerType[t].SerializationAbortRate())
			}
		}
		for t := 0; t < smallbank.NumTxnTypes; t++ {
			mean, ci := ci95(byType[t])
			series.Points = append(series.Points, Point{
				Label: smallbank.TxnType(t).String(), Mean: mean, CI: ci,
			})
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// runFig7 — high contention: hotspot of 10 customers, 60% Balance mix.
func runFig7(cfg Config) (*Result, error) {
	cfg = cfg.Defaults()
	return throughputFigure("fig7", "Figure 7: costs with high contention (PostgreSQL; hotspot 10, 60% Balance)",
		cfg, PostgresDB(cfg.Scale), workload.BalanceHeavyMix(0.6), 10, defaultHotProb,
		[]*smallbank.Strategy{
			smallbank.StrategySI,
			smallbank.StrategyMaterializeBW,
			smallbank.StrategyPromoteBWUpd,
			smallbank.StrategyMaterializeWT,
			smallbank.StrategyPromoteWTUpd,
			smallbank.StrategyMaterializeALL,
			smallbank.StrategyPromoteALL,
		},
		"Paper shape: eliminating the WT edge costs almost nothing; MaterializeBW ~½ of SI;",
		"the ALL strategies bottom out around 40% of SI — the headline 'up to 60% lower throughput'.",
	)
}

// runFig8 — Option WT on the commercial platform (absolute + relative).
func runFig8(cfg Config) (*Result, error) {
	cfg = cfg.Defaults()
	abs, err := throughputFigure("fig8a", "Figure 8(a): Option WT throughput (Commercial Platform)",
		cfg, CommercialDB(cfg.Scale), workload.UniformMix(), hotspotFor(cfg, defaultHotspot), defaultHotProb,
		[]*smallbank.Strategy{
			smallbank.StrategySI,
			smallbank.StrategyMaterializeWT,
			smallbank.StrategyPromoteWTSfu,
			smallbank.StrategyPromoteWTUpd,
		},
		"Paper shape: throughput peaks near MPL 20-25 then declines (per-session overhead);",
		"PromoteWT-sfu reaches SI's peak; materialization beats promotion-by-update here —",
		"the reverse of PostgreSQL (guideline 4).",
	)
	if err != nil {
		return nil, err
	}
	rel := relativeToFirst(abs, "fig8b", "Figure 8(b): throughput relative to SI (Commercial Platform)")
	return mergeResults("fig8", "Figure 8: eliminating the WT vulnerability (Commercial Platform)", abs, rel), nil
}

// runFig9 — Option BW on the commercial platform (absolute + relative).
func runFig9(cfg Config) (*Result, error) {
	cfg = cfg.Defaults()
	abs, err := throughputFigure("fig9a", "Figure 9(a): Option BW throughput (Commercial Platform)",
		cfg, CommercialDB(cfg.Scale), workload.UniformMix(), hotspotFor(cfg, defaultHotspot), defaultHotProb,
		[]*smallbank.Strategy{
			smallbank.StrategySI,
			smallbank.StrategyMaterializeBW,
			smallbank.StrategyPromoteBWSfu,
			smallbank.StrategyPromoteBWUpd,
		},
		"Paper shape: every BW repair loses at least ~10% of peak; PromoteBW-upd peaks at",
		"~80% of SI's throughput.",
	)
	if err != nil {
		return nil, err
	}
	rel := relativeToFirst(abs, "fig9b", "Figure 9(b): throughput relative to SI (Commercial Platform)")
	return mergeResults("fig9", "Figure 9: eliminating the BW vulnerability (Commercial Platform)", abs, rel), nil
}

// mergeResults renders two panels as one result.
func mergeResults(id, title string, parts ...*Result) *Result {
	out := &Result{ID: id, Title: title}
	for _, p := range parts {
		out.Text += fmt.Sprintf("--- %s ---\n%s\n", p.Title, RenderTable(p))
		out.Notes = append(out.Notes, p.Notes...)
		p.Notes = nil
	}
	return out
}

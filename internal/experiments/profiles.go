// Package experiments defines one runner per table and figure of the
// paper's evaluation (§IV), plus the ablation studies listed in
// DESIGN.md. Each experiment builds the appropriate platform profile,
// loads SmallBank, drives the closed-system workload across the
// configured MPLs and renders the same rows/series the paper reports.
package experiments

import (
	"time"

	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/simres"
	"sicost/internal/wal"
)

// PostgresResources models the paper's PostgreSQL 8.2 server: a single
// CPU whose per-transaction service time sets the throughput plateau.
// Durations are ~4× faster than the paper's Pentium IV so a full sweep
// finishes in seconds; multiply by Config.Scale to slow the hardware
// down.
func PostgresResources(scale float64) simres.Config {
	return simres.Config{
		VirtualCPUs: 1,
		TxnCPU:      300 * time.Microsecond,
		StmtCPU:     40 * time.Microsecond,
	}.Scaled(scale)
}

// CommercialResources models the commercial platform: higher base cost
// per transaction and a per-session overhead beyond ~20 active sessions,
// which produces the §IV-F peak-then-decline curve.
func CommercialResources(scale float64) simres.Config {
	return simres.Config{
		VirtualCPUs:      1,
		TxnCPU:           300 * time.Microsecond,
		StmtCPU:          50 * time.Microsecond,
		UpdaterCommitCPU: 400 * time.Microsecond,
		SessionKnee:      20,
		SessionOverhead:  55 * time.Microsecond,
	}.Scaled(scale)
}

// LogDevice is the simulated WAL disk: write cache disabled, group
// commit enabled (the paper's commit-delay setting).
func LogDevice(scale float64) wal.Config {
	return wal.Config{FsyncLatency: time.Duration(2500*scale) * time.Microsecond}
}

// PostgresDB assembles an engine configured as the PostgreSQL platform.
func PostgresDB(scale float64) engine.Config {
	cost := engine.DefaultCostModel(core.PlatformPostgres).Scaled(scale)
	return engine.Config{
		Mode:     core.SnapshotFUW,
		Platform: core.PlatformPostgres,
		Res:      PostgresResources(scale),
		WAL:      LogDevice(scale),
		Cost:     &cost,
	}
}

// CommercialDB assembles an engine configured as the commercial
// platform.
func CommercialDB(scale float64) engine.Config {
	cost := engine.DefaultCostModel(core.PlatformCommercial).Scaled(scale)
	return engine.Config{
		Mode:     core.SnapshotFUW,
		Platform: core.PlatformCommercial,
		Res:      CommercialResources(scale),
		WAL:      LogDevice(scale),
		Cost:     &cost,
	}
}

// ModeDB assembles a PostgreSQL-profile engine running an alternative
// concurrency-control mode (2PL, SSI) for the extension experiments.
func ModeDB(mode core.CCMode, scale float64) engine.Config {
	cfg := PostgresDB(scale)
	cfg.Mode = mode
	return cfg
}

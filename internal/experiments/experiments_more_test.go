package experiments

import (
	"strings"
	"testing"
	"time"
)

func tinyCfg() Config {
	return Config{
		Scale: 0.1,
		Ramp:  10 * time.Millisecond, Measure: 60 * time.Millisecond,
		Reps: 1, MPLs: []int{2}, Customers: 300, Seed: 11,
	}
}

func TestFig5bQuick(t *testing.T) {
	res, err := runFig5b(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Relative figure: SI itself is the baseline and not a series.
	if len(res.Series) != 4 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		if s.Name == "SI" {
			t.Fatal("baseline must not appear in the relative figure")
		}
		for _, p := range s.Points {
			if p.Mean <= 0 || p.Mean > 400 {
				t.Fatalf("%s@%s = %v%%: implausible relative throughput", s.Name, p.Label, p.Mean)
			}
		}
	}
}

func TestFig8Quick(t *testing.T) {
	res, err := runFig8(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Merged panels render into Text.
	if !strings.Contains(res.Text, "Figure 8(a)") || !strings.Contains(res.Text, "Figure 8(b)") {
		t.Fatalf("merged panels missing:\n%s", res.Text)
	}
	if !strings.Contains(res.Text, "PromoteWT-sfu") {
		t.Fatal("sfu series missing")
	}
}

func TestFig9Quick(t *testing.T) {
	res, err := runFig9(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "PromoteBW-sfu") || !strings.Contains(res.Text, "Figure 9(b)") {
		t.Fatalf("fig9 output:\n%s", res.Text)
	}
}

func TestFig7Quick(t *testing.T) {
	cfg := tinyCfg()
	res, err := runFig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 7 {
		t.Fatalf("series = %d", len(res.Series))
	}
}

func TestAblationGroupCommitQuick(t *testing.T) {
	cfg := tinyCfg()
	cfg.MPLs = []int{8}
	res, err := runAblationGroupCommit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	gc := res.Series[0].Points[0].Mean
	nogc := res.Series[1].Points[0].Mean
	if gc <= 0 || nogc <= 0 {
		t.Fatal("no throughput measured")
	}
	// With group commit off, the log device serializes updaters; at
	// MPL 8 the batched configuration must be at least as fast.
	if nogc > gc*1.15 {
		t.Fatalf("no-group-commit (%v) beat group commit (%v)", nogc, gc)
	}
}

func TestAblationEngineQuick(t *testing.T) {
	res, err := runAblationEngine(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("series = %d", len(res.Series))
	}
	names := []string{"SI (unsafe)", "PromoteWT-upd", "SSI engine", "2PL engine"}
	for i, s := range res.Series {
		if s.Name != names[i] {
			t.Fatalf("series %d = %s", i, s.Name)
		}
		if s.Points[0].Mean <= 0 {
			t.Fatalf("%s produced no throughput", s.Name)
		}
	}
}

func TestAblationFixedRowQuick(t *testing.T) {
	res, err := runAblationFixedRow(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d", len(res.Series))
	}
}

func TestAblationHotspotQuick(t *testing.T) {
	cfg := tinyCfg()
	res, err := runAblationHotspot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != 5 {
			t.Fatalf("%s hotspot points = %d", s.Name, len(s.Points))
		}
	}
}

func TestAblationAdvisorQuick(t *testing.T) {
	cfg := tinyCfg()
	res, err := runAblationAdvisor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"predicted", "measured", "rank agreement", "advisor recommendation: WC->TS:promote-upd"} {
		if !strings.Contains(res.Text, want) {
			t.Fatalf("advisor ablation missing %q:\n%s", want, res.Text)
		}
	}
}

func TestAblationLatencyQuick(t *testing.T) {
	cfg := tinyCfg()
	// Full scale, not tinyCfg's 0.1: the asserted signal (queueing delay on
	// the simulated single CPU) must dominate the per-transaction real CPU
	// cost, which the race detector inflates ~10x. At scale 0.1 the two are
	// the same order of magnitude and the comparison below is noise.
	cfg.Scale = 1.0
	cfg.Measure = 100 * time.Millisecond
	cfg.MPLs = []int{1, 6}
	res, err := runAblationLatency(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d", len(res.Series))
	}
	// Response time must rise with MPL once the CPU is saturated.
	si := res.Series[0]
	if si.Points[1].Mean <= si.Points[0].Mean {
		t.Fatalf("latency did not grow with MPL: %+v", si.Points)
	}
}

func TestProfilesScale(t *testing.T) {
	pg := PostgresResources(2)
	if pg.TxnCPU != 600*time.Microsecond {
		t.Fatalf("scaled TxnCPU = %v", pg.TxnCPU)
	}
	cm := CommercialResources(1)
	if cm.SessionKnee != 20 || cm.SessionOverhead == 0 {
		t.Fatal("commercial knee lost")
	}
	if LogDevice(2).FsyncLatency != 5*time.Millisecond {
		t.Fatal("log device scale")
	}
	if PostgresDB(1).Cost == nil || CommercialDB(1).Cost == nil {
		t.Fatal("profiles must pin their cost models")
	}
	if PostgresDB(1).Mode != CommercialDB(1).Mode {
		t.Fatal("both platforms run SI")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.Defaults()
	if cfg.Scale != 1 || cfg.Reps != 2 || cfg.Customers != 18000 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if len(cfg.MPLs) != 8 {
		t.Fatalf("MPL sweep = %v", cfg.MPLs)
	}
	// Explicit values survive.
	cfg2 := Config{Scale: 3, Reps: 7}.Defaults()
	if cfg2.Scale != 3 || cfg2.Reps != 7 {
		t.Fatal("Defaults clobbered explicit values")
	}
}

package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"sicost/internal/engine"
	"sicost/internal/metrics"
	"sicost/internal/smallbank"
	"sicost/internal/workload"
)

// Config controls how much work an experiment run does. The zero value
// is filled with quick defaults (a full figure in tens of seconds); the
// cmd/sibench flags expose paper-scale settings.
type Config struct {
	// Scale multiplies every simulated-hardware duration (1 = default
	// profile; 4 ≈ the paper's hardware speed).
	Scale float64
	// Ramp and Measure are the warm-up and measurement intervals per
	// point (the paper uses 30s + 60s).
	Ramp, Measure time.Duration
	// Reps repeats each point; results carry 95% confidence intervals
	// (the paper uses 5).
	Reps int
	// MPLs is the multiprogramming-level sweep.
	MPLs []int
	// Customers is the table size (the paper loads 18000).
	Customers int
	Seed      int64
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

// Defaults fills unset fields with the quick profile.
func (c Config) Defaults() Config {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Ramp == 0 {
		c.Ramp = 100 * time.Millisecond
	}
	if c.Measure == 0 {
		c.Measure = 400 * time.Millisecond
	}
	if c.Reps == 0 {
		c.Reps = 2
	}
	if len(c.MPLs) == 0 {
		c.MPLs = []int{1, 3, 5, 10, 15, 20, 25, 30}
	}
	if c.Customers == 0 {
		c.Customers = 18000
	}
	if c.Seed == 0 {
		c.Seed = 20080407 // ICDE 2008
	}
	return c
}

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// Point is one measured value of a series.
type Point struct {
	// Label is the x-coordinate: an MPL ("10") or a transaction type
	// ("Balance").
	Label string
	Mean  float64
	CI    float64
}

// Series is one line of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Point returns the point with the given label, or nil.
func (s *Series) Point(label string) *Point {
	for i := range s.Points {
		if s.Points[i].Label == label {
			return &s.Points[i]
		}
	}
	return nil
}

// Result is a fully rendered experiment outcome.
type Result struct {
	ID, Title      string
	XLabel, YLabel string
	Series         []Series
	// Notes carries shape expectations and caveats shown with the data.
	Notes []string
	// Text is pre-rendered non-tabular output (static analyses).
	Text string
}

// Experiment is one table/figure runner.
type Experiment struct {
	ID, Title string
	Run       func(cfg Config) (*Result, error)
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table I: tables updated by each strategy", runTable1},
		{"fig1", "Figure 1: SDG for the SmallBank benchmark", runFig1},
		{"fig2", "Figure 2: SDG for Option WT", runFig2},
		{"fig3", "Figure 3: SDGs for Option BW", runFig3},
		{"fig4", "Figure 4: eliminating ALL vulnerable edges (PostgreSQL)", runFig4},
		{"fig5a", "Figure 5(a): Option WT and BW throughput (PostgreSQL)", runFig5a},
		{"fig5b", "Figure 5(b): throughput relative to SI (PostgreSQL)", runFig5b},
		{"fig6", "Figure 6: serialization-failure abort rates at MPL=20 (PostgreSQL)", runFig6},
		{"fig7", "Figure 7: high contention — hotspot 10, 60% Balance (PostgreSQL)", runFig7},
		{"fig8", "Figure 8: Option WT on the commercial platform", runFig8},
		{"fig9", "Figure 9: Option BW on the commercial platform", runFig9},
		{"anomaly", "Anomaly validation: SI corrupts, strategies do not", runAnomaly},
		{"ablation-fixedrow", "Ablation: per-customer vs single-row materialization", runAblationFixedRow},
		{"ablation-groupcommit", "Ablation: group commit on/off", runAblationGroupCommit},
		{"ablation-engine", "Extension: SSI and 2PL engine modes vs app-level strategies", runAblationEngine},
		{"ablation-hotspot", "Ablation: hotspot-size sweep between Fig 5 and Fig 7", runAblationHotspot},
		{"ablation-advisor", "Extension: analytic advisor predictions vs measured throughput", runAblationAdvisor},
		{"ablation-latency", "Ablation: mean response time over MPL", runAblationLatency},
	}
}

// ByID resolves an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, ids())
}

func ids() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

// newLoadedDB opens an engine with the given config, loads SmallBank on
// free hardware, then installs the measured resource model.
func newLoadedDB(engCfg engine.Config, cfg Config) (*engine.DB, error) {
	measured := engCfg.Res
	engCfg.Res = PostgresResources(0) // free machine while loading
	engCfg.Res.VirtualCPUs = 0
	db := engine.Open(engCfg)
	if err := smallbank.CreateSchema(db); err != nil {
		db.Close()
		return nil, err
	}
	if _, err := smallbank.Load(db, smallbank.LoadConfig{Customers: cfg.Customers, Seed: cfg.Seed}); err != nil {
		db.Close()
		return nil, err
	}
	db.SetResources(measured)
	return db, nil
}

// sweepSpec describes one throughput-over-MPL sweep.
type sweepSpec struct {
	strategy *smallbank.Strategy
	engCfg   engine.Config
	mix      workload.Mix
	hotspot  int
	hotProb  float64
}

// runSweep measures TPS for each MPL with cfg.Reps repetitions and
// returns the series with 95% confidence intervals.
func runSweep(name string, spec sweepSpec, cfg Config) (Series, error) {
	s := Series{Name: name}
	for _, mpl := range cfg.MPLs {
		var tps []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			db, err := newLoadedDB(spec.engCfg, cfg)
			if err != nil {
				return s, err
			}
			res, err := workload.Run(db, workload.Config{
				Strategy: spec.strategy,
				MPL:      mpl, Customers: cfg.Customers,
				HotspotSize: spec.hotspot, HotspotProb: spec.hotProb,
				Mix:  spec.mix,
				Ramp: cfg.Ramp, Measure: cfg.Measure,
				Seed: cfg.Seed + int64(rep+1)*104729,
			})
			db.Close()
			if err != nil {
				return s, err
			}
			tps = append(tps, res.TPS)
		}
		mean, ci := metrics.CI95(tps)
		s.Points = append(s.Points, Point{Label: fmt.Sprintf("%d", mpl), Mean: mean, CI: ci})
		cfg.logf("  %-22s MPL %-3d  %8.0f TPS ±%.0f", name, mpl, mean, ci)
	}
	return s, nil
}

// throughputFigure runs a set of strategies over the MPL sweep on one
// platform profile.
func throughputFigure(id, title string, cfg Config, engCfg engine.Config, mix workload.Mix,
	hotspot int, hotProb float64, strategies []*smallbank.Strategy, notes ...string) (*Result, error) {

	res := &Result{
		ID: id, Title: title,
		XLabel: "MPL", YLabel: "TPS",
		Notes: notes,
	}
	for _, s := range strategies {
		cfg.logf("%s: strategy %s", id, s.Name)
		series, err := runSweep(s.Name, sweepSpec{
			strategy: s, engCfg: engCfg, mix: mix, hotspot: hotspot, hotProb: hotProb,
		}, cfg)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// relativeToFirst converts an absolute-TPS result into one normalized to
// its first series (SI), as the paper's 5(b)/8(b)/9(b) panels do.
func relativeToFirst(abs *Result, id, title string) *Result {
	rel := &Result{
		ID: id, Title: title,
		XLabel: abs.XLabel, YLabel: "% of SI throughput",
		Notes: abs.Notes,
	}
	if len(abs.Series) == 0 {
		return rel
	}
	base := abs.Series[0]
	for _, s := range abs.Series[1:] {
		out := Series{Name: s.Name}
		for _, p := range s.Points {
			bp := base.Point(p.Label)
			if bp == nil || bp.Mean == 0 {
				continue
			}
			out.Points = append(out.Points, Point{
				Label: p.Label,
				Mean:  100 * p.Mean / bp.Mean,
				CI:    100 * p.CI / bp.Mean,
			})
		}
		rel.Series = append(rel.Series, out)
	}
	return rel
}

package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// goldenResult is a fixed Result exercising every rendering path: two
// series with a hole (missing point), a CSV-hostile label, notes and
// free text.
func goldenResult() *Result {
	return &Result{
		ID:     "fig5",
		Title:  "Throughput vs MPL (hotspot 1000)",
		XLabel: "MPL",
		YLabel: "TPS",
		Series: []Series{
			{Name: "SI", Points: []Point{
				{Label: "1", Mean: 101.25, CI: 2.5},
				{Label: "10", Mean: 456.7, CI: 12.01},
				{Label: "20, hot", Mean: 512, CI: 0},
			}},
			{Name: "S2PL", Points: []Point{
				{Label: "1", Mean: 98.4, CI: 1.9},
				// "10" intentionally missing: renders as "-".
				{Label: "20, hot", Mean: 301.5, CI: 44.4},
			}},
		},
		Notes: []string{
			"SI should dominate S2PL at high MPL",
			"CIs are 95% over 3 runs",
		},
		Text: "static preamble line",
	}
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden.\n--- want\n%s--- got\n%s", name, want, got)
	}
}

func TestRenderTableGolden(t *testing.T) {
	checkGolden(t, "render_table.golden", RenderTable(goldenResult()))
}

func TestRenderCSVGolden(t *testing.T) {
	checkGolden(t, "render_csv.golden", RenderCSV(goldenResult()))
}

func TestRenderFullGolden(t *testing.T) {
	checkGolden(t, "render_full.golden", Render(goldenResult()))
}

func TestRenderCSVEscaping(t *testing.T) {
	// The fixture's "20, hot" label must arrive quoted, and quotes must
	// double. This is asserted directly (not only via the golden) so the
	// rule survives a careless -update.
	r := &Result{
		Title:  "q",
		XLabel: "x",
		Series: []Series{{Name: `se"ries`, Points: []Point{{Label: "a,b", Mean: 1, CI: 0}}}},
	}
	got := RenderCSV(r)
	want := "x,\"se\"\"ries\",\"se\"\"ries\"_ci95\n\"a,b\",1.000,0.000\n"
	if got != want {
		t.Fatalf("RenderCSV escaping:\nwant %q\ngot  %q", want, got)
	}
}

package experiments

import (
	"strings"
	"testing"
	"time"
)

// quickCfg keeps dynamic experiment tests to a couple of seconds.
func quickCfg() Config {
	return Config{
		Scale: 0.2, // very fast simulated hardware
		Ramp:  20 * time.Millisecond, Measure: 80 * time.Millisecond,
		Reps: 1, MPLs: []int{1, 4}, Customers: 400, Seed: 7,
	}
}

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{
		"table1", "fig1", "fig2", "fig3", "fig4", "fig5a", "fig5b",
		"fig6", "fig7", "fig8", "fig9", "anomaly",
		"ablation-fixedrow", "ablation-groupcommit", "ablation-engine", "ablation-hotspot",
		"ablation-advisor", "ablation-latency",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("experiments = %d, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Fatalf("experiment %d = %s, want %s", i, all[i].ID, id)
		}
		if _, err := ByID(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTable1(t *testing.T) {
	res, err := runTable1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"MaterializeWT", "PromoteALL", "Conf", "Sav(sfu)", "read-only Balance"} {
		if !strings.Contains(res.Text, want) {
			t.Fatalf("Table I missing %q:\n%s", want, res.Text)
		}
	}
}

func TestStaticFigures(t *testing.T) {
	res, err := runFig1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pivot WC", "Bal->WC", "WC->TS", "digraph"} {
		if !strings.Contains(res.Text, want) {
			t.Fatalf("fig1 missing %q", want)
		}
	}
	res2, err := runFig2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res2.Text, "serializable") {
		t.Fatal("fig2 must show safe SDGs")
	}
	res3, err := runFig3(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res3.Text, "MaterializeBW") || !strings.Contains(res3.Text, "PromoteBW-upd") {
		t.Fatal("fig3 sections missing")
	}
}

func TestThroughputFigureQuick(t *testing.T) {
	cfg := quickCfg()
	res, err := runFig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != len(cfg.MPLs) {
			t.Fatalf("%s points = %d", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Mean <= 0 {
				t.Fatalf("%s @%s: TPS %v", s.Name, p.Label, p.Mean)
			}
		}
	}
	table := RenderTable(res)
	if !strings.Contains(table, "SI") || !strings.Contains(table, "MPL") {
		t.Fatalf("table:\n%s", table)
	}
	csv := RenderCSV(res)
	if !strings.Contains(csv, "MPL,SI,SI_ci95") {
		t.Fatalf("csv header:\n%s", csv)
	}
	full := Render(res)
	if !strings.Contains(full, "## Figure 4") || !strings.Contains(full, "note:") {
		t.Fatalf("render:\n%s", full)
	}
}

func TestRelativeToFirst(t *testing.T) {
	abs := &Result{
		XLabel: "MPL",
		Series: []Series{
			{Name: "SI", Points: []Point{{Label: "1", Mean: 200}, {Label: "2", Mean: 400}}},
			{Name: "X", Points: []Point{{Label: "1", Mean: 100, CI: 20}, {Label: "2", Mean: 400}}},
		},
	}
	rel := relativeToFirst(abs, "r", "rel")
	if len(rel.Series) != 1 {
		t.Fatalf("series = %d", len(rel.Series))
	}
	p1 := rel.Series[0].Point("1")
	if p1 == nil || p1.Mean != 50 || p1.CI != 10 {
		t.Fatalf("point 1 = %+v", p1)
	}
	if p2 := rel.Series[0].Point("2"); p2 == nil || p2.Mean != 100 {
		t.Fatalf("point 2 = %+v", p2)
	}
}

func TestFig6Quick(t *testing.T) {
	cfg := quickCfg()
	res, err := runFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 5 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != 5 {
			t.Fatalf("%s points = %d", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Mean < 0 || p.Mean > 100 {
				t.Fatalf("%s %s: %v%%", s.Name, p.Label, p.Mean)
			}
		}
	}
}

func TestAnomalyExperiment(t *testing.T) {
	cfg := quickCfg()
	cfg.Measure = 200 * time.Millisecond
	res, err := runAnomaly(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "verdict=read-only anomaly") {
		t.Fatalf("SI scripted anomaly not observed:\n%s", res.Text)
	}
	if strings.Contains(res.Text, "FAILED") {
		t.Fatalf("a strategy failed to prevent the anomaly:\n%s", res.Text)
	}
	if strings.Contains(res.Text, "stochastic hotspot run serializable: false") {
		t.Fatalf("a strategy produced a cycle under load:\n%s", res.Text)
	}
}

func TestMergeResults(t *testing.T) {
	a := &Result{Title: "A", Series: []Series{{Name: "s", Points: []Point{{Label: "1", Mean: 1}}}}, Notes: []string{"n1"}}
	b := &Result{Title: "B", Text: "bee"}
	m := mergeResults("m", "M", a, b)
	if !strings.Contains(m.Text, "--- A ---") || !strings.Contains(m.Text, "bee") {
		t.Fatalf("merge:\n%s", m.Text)
	}
	if len(m.Notes) != 1 {
		t.Fatal("notes not lifted")
	}
}

func TestHotspotFor(t *testing.T) {
	cfg := Config{Customers: 400}
	if hotspotFor(cfg, 1000) != 200 {
		t.Fatal("clamp failed")
	}
	cfg.Customers = 18000
	if hotspotFor(cfg, 1000) != 1000 {
		t.Fatal("standard hotspot changed")
	}
}

func TestCSVEscape(t *testing.T) {
	if csvEscape("plain") != "plain" {
		t.Fatal("plain")
	}
	if csvEscape(`a,b"c`) != `"a,b""c"` {
		t.Fatalf("escaped = %s", csvEscape(`a,b"c`))
	}
}

package experiments

import (
	"fmt"
	"sort"
	"strings"

	"sicost/internal/advisor"
	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/smallbank"
	"sicost/internal/workload"
)

// runAblationFixedRow quantifies §II-B's remark that materialization
// should introduce contention "only if it is needed": the single
// conflict row variant versus the per-customer row, under high
// contention where the difference is starkest.
func runAblationFixedRow(cfg Config) (*Result, error) {
	cfg = cfg.Defaults()
	return throughputFigure("ablation-fixedrow",
		"Ablation: per-customer vs single-row materialization of the WT edge (PostgreSQL, hotspot 10, 60% Balance)",
		cfg, PostgresDB(cfg.Scale), workload.BalanceHeavyMix(0.6), 10, defaultHotProb,
		[]*smallbank.Strategy{
			smallbank.StrategySI,
			smallbank.StrategyMaterializeWT,
			smallbank.StrategyMaterializeWTFixed,
		},
		"Expected: the fixed-row variant makes every WC/TS pair conflict regardless of",
		"customer, collapsing throughput well below per-customer materialization.",
	)
}

// runAblationGroupCommit isolates the provenance of the rising
// throughput curve: with group commit disabled (one fsync per commit),
// updater throughput is capped near 1/FsyncLatency and the curve
// flattens immediately.
func runAblationGroupCommit(cfg Config) (*Result, error) {
	cfg = cfg.Defaults()
	res := &Result{
		ID: "ablation-groupcommit", Title: "Ablation: group commit on/off (PostgreSQL, plain SI)",
		XLabel: "MPL", YLabel: "TPS",
		Notes: []string{
			"Expected: without group commit the log device serializes commits (~1/fsync per",
			"updater), so throughput saturates far below the group-commit configuration.",
		},
	}
	for _, variant := range []struct {
		name      string
		maxBatch  int
		syncEvery bool
	}{
		{"group-commit", 0, false},
		// One commit per flush group AND one device sync per group:
		// without SyncEveryGroup the coalescing flush loop would still
		// amortize the sync across every group queued during it,
		// silently re-enabling group commit.
		{"no-group-commit", 1, true},
	} {
		engCfg := PostgresDB(cfg.Scale)
		engCfg.WAL.MaxBatch = variant.maxBatch
		engCfg.WAL.SyncEveryGroup = variant.syncEvery
		cfg.logf("ablation-groupcommit: %s", variant.name)
		s, err := runSweep(variant.name, sweepSpec{
			strategy: smallbank.StrategySI, engCfg: engCfg,
			mix: workload.UniformMix(), hotspot: hotspotFor(cfg, defaultHotspot), hotProb: defaultHotProb,
		}, cfg)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// runAblationEngine compares the application-level repairs against
// engine-level serializability: Cahill-style SSI (what PostgreSQL later
// shipped) and strict 2PL, all on the PostgreSQL hardware profile.
func runAblationEngine(cfg Config) (*Result, error) {
	cfg = cfg.Defaults()
	res := &Result{
		ID: "ablation-engine", Title: "Extension: engine-level serializability (SSI, 2PL) vs app-level strategies (PostgreSQL profile)",
		XLabel: "MPL", YLabel: "TPS",
		Notes: []string{
			"SI and PromoteWT-upd bound the app-level cost; SSI pays runtime conflict",
			"tracking and false-positive aborts; 2PL blocks readers behind writers.",
		},
	}
	variants := []struct {
		name     string
		mode     core.CCMode
		strategy *smallbank.Strategy
	}{
		{"SI (unsafe)", core.SnapshotFUW, smallbank.StrategySI},
		{"PromoteWT-upd", core.SnapshotFUW, smallbank.StrategyPromoteWTUpd},
		{"SSI engine", core.SerializableSI, smallbank.StrategySI},
		{"2PL engine", core.Strict2PL, smallbank.StrategySI},
	}
	for _, v := range variants {
		cfg.logf("ablation-engine: %s", v.name)
		s, err := runSweep(v.name, sweepSpec{
			strategy: v.strategy, engCfg: ModeDB(v.mode, cfg.Scale),
			mix: workload.UniformMix(), hotspot: hotspotFor(cfg, defaultHotspot), hotProb: defaultHotProb,
		}, cfg)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// runAblationAdvisor validates the paper's future-work tool: the
// analytic performance model of internal/advisor predicts the
// throughput of every repair option, and we compare its ranking against
// measured throughput of the corresponding strategies at MPL 20 on the
// PostgreSQL profile.
func runAblationAdvisor(cfg Config) (*Result, error) {
	cfg = cfg.Defaults()

	// Predictions.
	weights := map[string]float64{"Bal": 0.2, "DC": 0.2, "TS": 0.2, "Amg": 0.2, "WC": 0.2}
	plat := advisor.Platform{
		Name:  core.PlatformPostgres,
		Res:   PostgresResources(cfg.Scale),
		Fsync: LogDevice(cfg.Scale).FsyncLatency,
		Cost:  engine.DefaultCostModel(core.PlatformPostgres).Scaled(cfg.Scale),
	}
	hot := hotspotFor(cfg, defaultHotspot)
	preds, err := advisor.Advise(smallbank.BasePrograms(), advisor.Workload{
		Weights: weights, HotspotSize: hot, HotspotProb: defaultHotProb, MPL: 20,
	}, plat)
	if err != nil {
		return nil, err
	}

	// Measurements for the strategies the options map onto.
	optionToStrategy := map[string]*smallbank.Strategy{
		"WC->TS:materialize":  smallbank.StrategyMaterializeWT,
		"WC->TS:promote-upd":  smallbank.StrategyPromoteWTUpd,
		"Bal->WC:materialize": smallbank.StrategyMaterializeBW,
		"Bal->WC:promote-upd": smallbank.StrategyPromoteBWUpd,
		"all:materialize":     smallbank.StrategyMaterializeALL,
		"all:promote-upd":     smallbank.StrategyPromoteALL,
	}
	measure := func(s *smallbank.Strategy) (float64, error) {
		var tps []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			db, err := newLoadedDB(PostgresDB(cfg.Scale), cfg)
			if err != nil {
				return 0, err
			}
			out, err := workload.Run(db, workload.Config{
				Strategy: s, MPL: 20, Customers: cfg.Customers,
				HotspotSize: hot, HotspotProb: defaultHotProb,
				Ramp: cfg.Ramp, Measure: cfg.Measure,
				Seed: cfg.Seed + int64(rep+1)*104729,
			})
			db.Close()
			if err != nil {
				return 0, err
			}
			tps = append(tps, out.TPS)
		}
		mean, _ := ci95(tps)
		return mean, nil
	}

	type rowT struct {
		name                string
		predicted, measured float64
		sound               bool
	}
	var rows []rowT
	for _, p := range preds {
		s, ok := optionToStrategy[p.Option.Name]
		if !ok {
			continue // sfu options are not sound on PostgreSQL
		}
		cfg.logf("ablation-advisor: measuring %s", s.Name)
		m, err := measure(s)
		if err != nil {
			return nil, err
		}
		rows = append(rows, rowT{p.Option.Name, p.TPS, m, p.Sound})
	}

	// Rank agreement: Spearman-style check on the two orderings.
	rankOf := func(key func(rowT) float64) map[string]int {
		idx := make([]int, len(rows))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return key(rows[idx[a]]) > key(rows[idx[b]]) })
		out := make(map[string]int, len(rows))
		for rank, i := range idx {
			out[rows[i].name] = rank + 1
		}
		return out
	}
	predRank := rankOf(func(r rowT) float64 { return r.predicted })
	measRank := rankOf(func(r rowT) float64 { return r.measured })
	agree := 0
	for name := range predRank {
		if predRank[name] == measRank[name] {
			agree++
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %12s %12s %10s %10s\n", "option", "predicted", "measured", "pred.rank", "meas.rank")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %12.0f %12.0f %10d %10d\n",
			r.name, r.predicted, r.measured, predRank[r.name], measRank[r.name])
	}
	fmt.Fprintf(&b, "\nrank agreement: %d/%d options placed identically\n", agree, len(rows))
	fmt.Fprintf(&b, "advisor recommendation: %s\n", preds[0].Option.Name)

	return &Result{
		ID: "ablation-advisor", Title: "Extension: analytic advisor predictions vs measured throughput (PostgreSQL, MPL 20)",
		Text: b.String(),
		Notes: []string{
			"The advisor is the tool the paper's conclusion calls for: it must rank the",
			"targeted WT repairs above BW, and both above the no-analysis ALL strategies.",
		},
	}, nil
}

// runAblationLatency reports mean response time over MPL for SI and the
// two BW repairs — the driver statistic the paper's §IV protocol records
// ("and also the average response time") but does not plot. It makes
// the closed-system mechanics visible: response time rises with MPL as
// the single CPU saturates, and strategies that turn Balance into an
// updater add the log wait to every transaction.
func runAblationLatency(cfg Config) (*Result, error) {
	cfg = cfg.Defaults()
	res := &Result{
		ID: "ablation-latency", Title: "Ablation: mean response time over MPL (PostgreSQL)",
		XLabel: "MPL", YLabel: "mean response time (ms)",
		Notes: []string{
			"Closed system: once the CPU saturates, added clients only add queueing delay,",
			"so response time grows linearly past the throughput knee.",
		},
	}
	for _, s := range []*smallbank.Strategy{
		smallbank.StrategySI, smallbank.StrategyPromoteWTUpd, smallbank.StrategyPromoteBWUpd,
	} {
		series := Series{Name: s.Name}
		for _, mpl := range cfg.MPLs {
			var ms []float64
			for rep := 0; rep < cfg.Reps; rep++ {
				db, err := newLoadedDB(PostgresDB(cfg.Scale), cfg)
				if err != nil {
					return nil, err
				}
				out, err := workload.Run(db, workload.Config{
					Strategy: s, MPL: mpl, Customers: cfg.Customers,
					HotspotSize: hotspotFor(cfg, defaultHotspot), HotspotProb: defaultHotProb,
					Ramp: cfg.Ramp, Measure: cfg.Measure,
					Seed: cfg.Seed + int64(rep+1)*104729,
				})
				db.Close()
				if err != nil {
					return nil, err
				}
				ms = append(ms, float64(out.MeanLatency.Microseconds())/1000)
			}
			mean, ci := ci95(ms)
			series.Points = append(series.Points, Point{Label: fmt.Sprintf("%d", mpl), Mean: mean, CI: ci})
			cfg.logf("  %-18s MPL %-3d  %6.2f ms ±%.2f", s.Name, mpl, mean, ci)
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// runAblationHotspot sweeps the hotspot size between the paper's two
// operating points (1000 and 10), showing the contention continuum that
// separates Figure 5 from Figure 7.
func runAblationHotspot(cfg Config) (*Result, error) {
	cfg = cfg.Defaults()
	res := &Result{
		ID: "ablation-hotspot", Title: "Ablation: hotspot-size sweep at MPL=20 (PostgreSQL, 60% Balance)",
		XLabel: "hotspot size", YLabel: "TPS",
		Notes: []string{
			"Expected: MaterializeBW degrades as the hotspot shrinks (conflict-table",
			"collisions grow ~1/hotspot); PromoteWT-upd tracks SI throughout.",
		},
	}
	hotspots := []int{10, 30, 100, 300, 1000}
	strategies := []*smallbank.Strategy{
		smallbank.StrategySI,
		smallbank.StrategyPromoteWTUpd,
		smallbank.StrategyMaterializeBW,
	}
	for _, s := range strategies {
		series := Series{Name: s.Name}
		for _, h := range hotspots {
			hs := h
			if hs >= cfg.Customers {
				hs = cfg.Customers / 2
			}
			var tps []float64
			for rep := 0; rep < cfg.Reps; rep++ {
				db, err := newLoadedDB(PostgresDB(cfg.Scale), cfg)
				if err != nil {
					return nil, err
				}
				out, err := workload.Run(db, workload.Config{
					Strategy: s, MPL: 20, Customers: cfg.Customers,
					HotspotSize: hs, HotspotProb: defaultHotProb,
					Mix:  workload.BalanceHeavyMix(0.6),
					Ramp: cfg.Ramp, Measure: cfg.Measure,
					Seed: cfg.Seed + int64(rep+1)*104729,
				})
				db.Close()
				if err != nil {
					return nil, err
				}
				tps = append(tps, out.TPS)
			}
			mean, ci := ci95(tps)
			series.Points = append(series.Points, Point{Label: fmt.Sprintf("%d", h), Mean: mean, CI: ci})
			cfg.logf("  %-18s hotspot %-5d %8.0f TPS ±%.0f", s.Name, h, mean, ci)
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

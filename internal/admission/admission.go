// Package admission implements an adaptive concurrency limiter for the
// front of the transaction engine: a token gate with a bounded FIFO
// wait queue, load shedding, and an AIMD controller with an abort-storm
// circuit breaker.
//
// The gate bounds the number of transactions *executing* concurrently
// (the multiprogramming level the engine actually sees), independent of
// how many clients are connected or queued. The controller moves the
// bound: additive increase while commit latency and abort attribution
// stay healthy, multiplicative decrease on latency inflation or
// serialization-abort spikes, and a hard clamp (circuit breaker) when
// an abort storm is detected, probing back up after a cooldown.
//
// This is the mechanism that turns the paper's peak-then-decline
// overload curve (§IV-F) into a stable plateau: past saturation, extra
// in-flight transactions only add data contention and wasted work, so
// the gate holds the engine at its productive concurrency and sheds or
// queues the rest.
package admission

import (
	"sync"
	"time"

	"sicost/internal/core"
)

// waiter is one queued Begin. The ready channel is buffered so a
// granter never blocks handing over the slot; the grant-vs-timeout race
// is resolved under the gate mutex exactly like the lock table's
// withdraw path: whoever removes the waiter from the queue decides the
// verdict, and a waiter that finds itself already removed must consume
// the verdict that was (or is about to be) sent.
type waiter struct {
	ready    chan error
	enqueued time.Time
}

// Gate is the token gate: at most `limit` holders at once, a bounded
// FIFO queue of waiters behind them, and shedding past the queue bound.
// All methods are safe for concurrent use.
type Gate struct {
	mu       sync.Mutex
	limit    int
	maxQueue int
	inflight int
	queue    []*waiter
	closed   bool

	// Lifetime counters, guarded by mu.
	admitted  uint64 // successful Acquires
	queued    uint64 // Acquires that waited in the queue first
	shed      uint64 // Acquires rejected with ErrOverload (queue full)
	expired   uint64 // Acquires whose deadline expired while queued
	waitNanos uint64 // total queue-wait time of admitted waiters
}

// NewGate builds a gate with the given concurrency limit and queue
// bound. limit < 1 is raised to 1; maxQueue < 0 is treated as 0 (shed
// immediately when the gate is full).
func NewGate(limit, maxQueue int) *Gate {
	if limit < 1 {
		limit = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Gate{limit: limit, maxQueue: maxQueue}
}

// Acquire takes an execution slot, blocking in the FIFO queue if the
// gate is at its limit. A zero deadline means wait indefinitely (until
// granted or the gate closes). It returns:
//
//   - nil: slot held; the caller must Release exactly once.
//   - core.ErrOverload: the wait queue was full, the caller was shed.
//   - core.ErrTxDeadline: the deadline expired while queued (or had
//     already expired and the gate was full).
//   - core.ErrShuttingDown: the gate closed before a slot was granted.
func (g *Gate) Acquire(deadline time.Time) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return core.ErrShuttingDown
	}
	if g.inflight < g.limit && len(g.queue) == 0 {
		g.inflight++
		g.admitted++
		g.mu.Unlock()
		return nil
	}
	// Must queue. An already-expired deadline cannot survive any wait.
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		g.expired++
		g.mu.Unlock()
		return core.ErrTxDeadline
	}
	if len(g.queue) >= g.maxQueue {
		g.shed++
		g.mu.Unlock()
		return core.ErrOverload
	}
	w := &waiter{ready: make(chan error, 1), enqueued: time.Now()}
	g.queue = append(g.queue, w)
	g.queued++
	g.mu.Unlock()

	if deadline.IsZero() {
		return <-w.ready
	}
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case err := <-w.ready:
		return err
	case <-timer.C:
		return g.withdraw(w)
	}
}

// withdraw resolves the deadline-vs-grant race for a timed-out waiter.
// If the waiter is still queued it is removed and loses; otherwise a
// verdict has already been (or is being) sent and must be honoured —
// in particular a granted slot must not leak.
func (g *Gate) withdraw(w *waiter) error {
	g.mu.Lock()
	for i, q := range g.queue {
		if q == w {
			g.queue = append(g.queue[:i], g.queue[i+1:]...)
			g.expired++
			g.mu.Unlock()
			return core.ErrTxDeadline
		}
	}
	g.mu.Unlock()
	return <-w.ready
}

// grantLocked hands slots to queued waiters while capacity allows.
// Callers hold g.mu.
func (g *Gate) grantLocked() {
	for g.inflight < g.limit && len(g.queue) > 0 {
		w := g.queue[0]
		g.queue = g.queue[1:]
		g.inflight++
		g.admitted++
		g.waitNanos += uint64(time.Since(w.enqueued))
		w.ready <- nil
	}
}

// Release returns an execution slot and wakes the next waiter, if any.
func (g *Gate) Release() {
	g.mu.Lock()
	if g.inflight > 0 {
		g.inflight--
	}
	g.grantLocked()
	g.mu.Unlock()
}

// SetLimit changes the concurrency limit. Raising it grants queued
// waiters immediately; lowering it takes effect as holders release
// (slots already granted are never revoked).
func (g *Gate) SetLimit(n int) {
	if n < 1 {
		n = 1
	}
	g.mu.Lock()
	g.limit = n
	g.grantLocked()
	g.mu.Unlock()
}

// Limit returns the current concurrency limit.
func (g *Gate) Limit() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.limit
}

// Close rejects all queued waiters with core.ErrShuttingDown and makes
// every future Acquire fail the same way. Slots already held stay valid
// until released, so in-flight transactions drain normally. Idempotent.
func (g *Gate) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	q := g.queue
	g.queue = nil
	g.mu.Unlock()
	for _, w := range q {
		w.ready <- core.ErrShuttingDown
	}
}

// GateStats is a point-in-time snapshot of the gate.
type GateStats struct {
	Limit      int           // current concurrency limit
	InFlight   int           // slots currently held
	QueueDepth int           // waiters currently queued
	Admitted   uint64        // total successful Acquires
	Queued     uint64        // Acquires that waited before admission
	Shed       uint64        // Acquires rejected with ErrOverload
	Expired    uint64        // deadline expiries in the queue
	AvgWait    time.Duration // mean queue wait of admitted waiters
}

// Stats snapshots the gate counters.
func (g *Gate) Stats() GateStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := GateStats{
		Limit:      g.limit,
		InFlight:   g.inflight,
		QueueDepth: len(g.queue),
		Admitted:   g.admitted,
		Queued:     g.queued,
		Shed:       g.shed,
		Expired:    g.expired,
	}
	if g.queued > 0 {
		s.AvgWait = time.Duration(g.waitNanos / g.queued)
	}
	return s
}

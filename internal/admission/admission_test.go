package admission

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sicost/internal/core"
)

func TestGateFastPath(t *testing.T) {
	g := NewGate(2, 4)
	if err := g.Acquire(time.Time{}); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if err := g.Acquire(time.Time{}); err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	s := g.Stats()
	if s.InFlight != 2 || s.Admitted != 2 || s.QueueDepth != 0 {
		t.Fatalf("stats = %+v", s)
	}
	g.Release()
	g.Release()
	if s := g.Stats(); s.InFlight != 0 {
		t.Fatalf("inflight after release = %d", s.InFlight)
	}
}

func TestGateQueueFIFO(t *testing.T) {
	g := NewGate(1, 8)
	if err := g.Acquire(time.Time{}); err != nil {
		t.Fatal(err)
	}
	const n = 5
	order := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := g.Acquire(time.Time{}); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			g.Release()
		}(i)
		// Ensure waiter i is queued before waiter i+1 starts.
		waitFor(t, func() bool { return g.Stats().QueueDepth == i+1 })
	}
	g.Release()
	wg.Wait()
	close(order)
	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("wake order: got waiter %d, want %d", got, want)
		}
		want++
	}
}

func TestGateShedsOnFullQueue(t *testing.T) {
	g := NewGate(1, 1)
	if err := g.Acquire(time.Time{}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- g.Acquire(time.Time{}) }()
	waitFor(t, func() bool { return g.Stats().QueueDepth == 1 })
	// Queue full: next acquire is shed.
	if err := g.Acquire(time.Time{}); !errors.Is(err, core.ErrOverload) {
		t.Fatalf("overflow acquire: got %v, want ErrOverload", err)
	}
	if s := g.Stats(); s.Shed != 1 {
		t.Fatalf("shed = %d, want 1", s.Shed)
	}
	g.Release()
	if err := <-done; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	g.Release()
}

func TestGateDeadlineInQueue(t *testing.T) {
	g := NewGate(1, 8)
	if err := g.Acquire(time.Time{}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := g.Acquire(time.Now().Add(20 * time.Millisecond))
	if !errors.Is(err, core.ErrTxDeadline) {
		t.Fatalf("queued acquire: got %v, want ErrTxDeadline", err)
	}
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Fatalf("expired after %v, before the deadline", el)
	}
	s := g.Stats()
	if s.Expired != 1 || s.QueueDepth != 0 {
		t.Fatalf("stats after expiry = %+v", s)
	}
	// An already-expired deadline fails fast when the gate is full...
	if err := g.Acquire(time.Now().Add(-time.Second)); !errors.Is(err, core.ErrTxDeadline) {
		t.Fatalf("pre-expired acquire: got %v", err)
	}
	g.Release()
	// ...but is still admitted on the fast path (statement layer will
	// notice the expiry).
	if err := g.Acquire(time.Now().Add(-time.Second)); err != nil {
		t.Fatalf("fast-path acquire with expired deadline: %v", err)
	}
	g.Release()
}

// TestGateDeadlineGrantRace drives the withdraw race: grants delivered
// at the same moment deadlines fire. Every grant must be either used or
// impossible — a waiter that returns ErrTxDeadline must not hold a
// slot, so inflight must drain to zero.
func TestGateDeadlineGrantRace(t *testing.T) {
	g := NewGate(2, 256)
	var wg sync.WaitGroup
	var granted, expired atomic.Int64
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d := time.Now().Add(time.Duration(i%5) * time.Millisecond)
			err := g.Acquire(d)
			switch {
			case err == nil:
				granted.Add(1)
				time.Sleep(100 * time.Microsecond)
				g.Release()
			case errors.Is(err, core.ErrTxDeadline):
				expired.Add(1)
			default:
				t.Errorf("acquire: %v", err)
			}
		}(i)
	}
	wg.Wait()
	s := g.Stats()
	if s.InFlight != 0 || s.QueueDepth != 0 {
		t.Fatalf("leaked slots or waiters: %+v", s)
	}
	if granted.Load()+expired.Load() != 64 {
		t.Fatalf("granted %d + expired %d != 64", granted.Load(), expired.Load())
	}
}

func TestGateCloseWakesWaiters(t *testing.T) {
	g := NewGate(1, 16)
	if err := g.Acquire(time.Time{}); err != nil {
		t.Fatal(err)
	}
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() { errs <- g.Acquire(time.Time{}) }()
	}
	waitFor(t, func() bool { return g.Stats().QueueDepth == n })
	g.Close()
	for i := 0; i < n; i++ {
		if err := <-errs; !errors.Is(err, core.ErrShuttingDown) {
			t.Fatalf("waiter after close: got %v, want ErrShuttingDown", err)
		}
	}
	if err := g.Acquire(time.Time{}); !errors.Is(err, core.ErrShuttingDown) {
		t.Fatalf("acquire after close: got %v", err)
	}
	g.Close() // idempotent
	g.Release()
	if s := g.Stats(); s.InFlight != 0 || s.QueueDepth != 0 {
		t.Fatalf("stats after drain = %+v", s)
	}
}

// TestGateCloseRace races Close against a storm of acquirers and
// releasers; run under -race this is the regression test for the
// shutdown-drain path. No Acquire may hang and no slot may leak.
func TestGateCloseRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		g := NewGate(4, 32)
		var wg sync.WaitGroup
		for i := 0; i < 64; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				var d time.Time
				if i%3 == 0 {
					d = time.Now().Add(time.Duration(i%7) * 100 * time.Microsecond)
				}
				err := g.Acquire(d)
				if err == nil {
					g.Release()
					return
				}
				if !errors.Is(err, core.ErrShuttingDown) &&
					!errors.Is(err, core.ErrOverload) &&
					!errors.Is(err, core.ErrTxDeadline) {
					t.Errorf("acquire: unexpected %v", err)
				}
			}(i)
		}
		go g.Close()
		wg.Wait()
		if s := g.Stats(); s.InFlight != 0 || s.QueueDepth != 0 {
			t.Fatalf("round %d: leak: %+v", round, s)
		}
	}
}

func TestGateSetLimitGrantsWaiters(t *testing.T) {
	g := NewGate(1, 8)
	if err := g.Acquire(time.Time{}); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() { errs <- g.Acquire(time.Time{}) }()
	}
	waitFor(t, func() bool { return g.Stats().QueueDepth == 3 })
	g.SetLimit(4)
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("waiter after raise: %v", err)
		}
	}
	if s := g.Stats(); s.InFlight != 4 || s.Limit != 4 {
		t.Fatalf("stats after raise = %+v", s)
	}
	// Lowering never revokes held slots.
	g.SetLimit(2)
	if s := g.Stats(); s.InFlight != 4 || s.Limit != 2 {
		t.Fatalf("stats after lower = %+v", s)
	}
	for i := 0; i < 4; i++ {
		g.Release()
	}
}

func TestControllerAIMD(t *testing.T) {
	l := New(Config{InitialLimit: 8, MinLimit: 2, MaxLimit: 64})
	healthy := Observation{Commits: 100, CommitP50: time.Millisecond, CommitP99: 2 * time.Millisecond}
	for i := 0; i < 5; i++ {
		l.Observe(healthy)
	}
	if got := l.Gate().Limit(); got != 13 {
		t.Fatalf("limit after 5 healthy ticks = %d, want 13", got)
	}
	// Serialization-abort spike past AbortShrink: multiplicative decrease.
	l.Observe(Observation{Commits: 60, StormAborts: 40, CommitP50: time.Millisecond, CommitP99: 2 * time.Millisecond})
	if got := l.Gate().Limit(); got != 9 { // 13 * 0.7 = 9.1 -> 9
		t.Fatalf("limit after abort spike = %d, want 9", got)
	}
	// Latency inflation (p99 >> inflation x floor p50): shrink too.
	l.Observe(Observation{Commits: 100, CommitP50: 5 * time.Millisecond, CommitP99: 50 * time.Millisecond})
	if got := l.Gate().Limit(); got != 6 { // 9 * 0.7 = 6.3 -> 6
		t.Fatalf("limit after latency inflation = %d, want 6", got)
	}
	if s := l.Stats(); s.Breaker != BreakerClosed || s.Shrinks != 2 || s.Grows != 5 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestControllerBreaker(t *testing.T) {
	cfg := Config{InitialLimit: 32, MinLimit: 2, MaxLimit: 64,
		Interval: 10 * time.Millisecond, Cooldown: 30 * time.Millisecond}
	l := New(cfg)
	storm := Observation{Commits: 20, StormAborts: 80, CommitP50: time.Millisecond, CommitP99: 2 * time.Millisecond}
	l.Observe(storm)
	if s := l.Stats(); s.Breaker != BreakerOpen || s.Gate.Limit != 2 || s.Trips != 1 {
		t.Fatalf("after storm: %+v", s)
	}
	// Cooldown: 3 ticks at 10ms covers the 30ms hold.
	quiet := Observation{Commits: 10, CommitP50: time.Millisecond, CommitP99: 2 * time.Millisecond}
	for i := 0; i < 3; i++ {
		l.Observe(quiet)
		if s := l.Stats(); s.Breaker == BreakerProbing {
			break
		}
	}
	if s := l.Stats(); s.Breaker != BreakerProbing {
		t.Fatalf("breaker after cooldown = %v, want probing", s.Breaker)
	}
	// Healthy probing ticks grow the limit and eventually re-close.
	for i := 0; i < 3; i++ {
		l.Observe(quiet)
	}
	s := l.Stats()
	if s.Breaker != BreakerClosed {
		t.Fatalf("breaker after healthy probes = %v, want closed", s.Breaker)
	}
	if s.Gate.Limit <= 2 {
		t.Fatalf("limit did not probe up: %d", s.Gate.Limit)
	}
	// A storm during probing re-trips immediately.
	l.Observe(storm)
	l.Observe(quiet) // cooldown tick
	l.Observe(quiet)
	l.Observe(quiet) // now probing
	l.Observe(storm)
	if s := l.Stats(); s.Breaker != BreakerOpen || s.Trips != 3 {
		t.Fatalf("probing re-trip: %+v", s)
	}
}

func TestControllerIdleTicks(t *testing.T) {
	l := New(Config{InitialLimit: 8, Interval: 10 * time.Millisecond, Cooldown: 20 * time.Millisecond})
	before := l.Gate().Limit()
	l.Observe(Observation{}) // idle: no change
	if got := l.Gate().Limit(); got != before {
		t.Fatalf("idle tick moved limit: %d -> %d", before, got)
	}
	// Idle ticks still cool an open breaker.
	l.Observe(Observation{Commits: 1, StormAborts: 99})
	if l.Stats().Breaker != BreakerOpen {
		t.Fatal("storm did not trip breaker")
	}
	l.Observe(Observation{})
	l.Observe(Observation{})
	if got := l.Stats().Breaker; got != BreakerProbing {
		t.Fatalf("breaker after idle cooldown = %v, want probing", got)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 2s")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

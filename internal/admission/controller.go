package admission

import (
	"sync"
	"time"
)

// BreakerState is the circuit-breaker mode of the controller.
type BreakerState uint8

// Breaker states.
const (
	// BreakerClosed: normal AIMD operation.
	BreakerClosed BreakerState = iota
	// BreakerOpen: an abort storm tripped the breaker; the limit is
	// clamped to MinLimit for the cooldown period.
	BreakerOpen
	// BreakerProbing: cooldown elapsed; the limit grows additively
	// again but re-trips on the first unhealthy tick, and the breaker
	// only re-closes after several consecutive healthy ticks.
	BreakerProbing
)

// String names the breaker state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerProbing:
		return "probing"
	default:
		return "unknown"
	}
}

// Config tunes the limiter. The zero value is usable: every field has a
// sensible default applied by New.
type Config struct {
	// InitialLimit is the starting concurrency limit (default 8).
	InitialLimit int
	// MinLimit is the floor the limit never drops below and the clamp
	// value while the breaker is open (default 2).
	MinLimit int
	// MaxLimit caps additive growth (default 1024).
	MaxLimit int
	// MaxQueue bounds the admission wait queue; Begins past it are
	// shed with core.ErrOverload (default 4 × MaxLimit).
	MaxQueue int
	// Interval is the controller tick period (default 20ms).
	Interval time.Duration
	// LatencyTarget, when set, is an absolute commit-p99 ceiling: a
	// tick with p99 above it is unhealthy. When zero the controller
	// uses a gradient instead: the lowest commit p50 ever observed is
	// the no-queueing floor, and p99 > LatencyInflation × floor is
	// unhealthy.
	LatencyTarget time.Duration
	// LatencyInflation is the gradient multiplier (default 8).
	LatencyInflation float64
	// AbortShrink is the storm-abort fraction (serialization +
	// deadlock + lock-timeout aborts over attempts) at which the limit
	// shrinks multiplicatively (default 0.30).
	AbortShrink float64
	// AbortBreak is the fraction that trips the circuit breaker
	// (default 0.60).
	AbortBreak float64
	// Cooldown is how long the breaker stays open before probing
	// (default 10 × Interval).
	Cooldown time.Duration
	// Step is the additive increase per healthy tick (default 1).
	Step int
	// Beta is the multiplicative-decrease factor (default 0.7).
	Beta float64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.InitialLimit <= 0 {
		c.InitialLimit = 8
	}
	if c.MinLimit <= 0 {
		c.MinLimit = 2
	}
	if c.MaxLimit <= 0 {
		c.MaxLimit = 1024
	}
	if c.MaxLimit < c.MinLimit {
		c.MaxLimit = c.MinLimit
	}
	if c.InitialLimit < c.MinLimit {
		c.InitialLimit = c.MinLimit
	}
	if c.InitialLimit > c.MaxLimit {
		c.InitialLimit = c.MaxLimit
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxLimit
	}
	if c.Interval <= 0 {
		c.Interval = 20 * time.Millisecond
	}
	if c.LatencyInflation <= 1 {
		c.LatencyInflation = 8
	}
	if c.AbortShrink <= 0 || c.AbortShrink > 1 {
		c.AbortShrink = 0.30
	}
	if c.AbortBreak <= 0 || c.AbortBreak > 1 {
		c.AbortBreak = 0.60
	}
	if c.AbortBreak < c.AbortShrink {
		c.AbortBreak = c.AbortShrink
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * c.Interval
	}
	if c.Step <= 0 {
		c.Step = 1
	}
	if c.Beta <= 0 || c.Beta >= 1 {
		c.Beta = 0.7
	}
	return c
}

// Observation is one controller tick's view of the engine, computed
// from metrics.TxnMetrics deltas between ticks.
type Observation struct {
	// Commits in the interval.
	Commits uint64
	// StormAborts are the concurrency-failure aborts that feed
	// retry storms: serialization (FUW + SSI), deadlock, lock-timeout.
	StormAborts uint64
	// CommitP50 and CommitP99 are commit-latency quantiles over the
	// interval's committed updaters (zero when no sample).
	CommitP50, CommitP99 time.Duration
}

// Limiter bundles the gate with its AIMD controller. Acquire/Release
// are the hot path; Observe is called periodically (by the engine's
// admission loop) with fresh metrics deltas.
type Limiter struct {
	cfg  Config
	gate *Gate

	mu           sync.Mutex
	state        BreakerState
	floorP50     time.Duration // lowest commit p50 seen: no-queueing latency floor
	cooldownLeft time.Duration
	healthyTicks int // consecutive healthy probing ticks
	trips        uint64
	shrinks      uint64
	grows        uint64
}

// New builds a limiter from cfg (zero fields defaulted).
func New(cfg Config) *Limiter {
	cfg = cfg.withDefaults()
	return &Limiter{
		cfg:  cfg,
		gate: NewGate(cfg.InitialLimit, cfg.MaxQueue),
	}
}

// Gate exposes the underlying token gate.
func (l *Limiter) Gate() *Gate { return l.gate }

// Acquire forwards to the gate.
func (l *Limiter) Acquire(deadline time.Time) error { return l.gate.Acquire(deadline) }

// Release forwards to the gate.
func (l *Limiter) Release() { l.gate.Release() }

// Close forwards to the gate, waking all queued waiters with
// core.ErrShuttingDown.
func (l *Limiter) Close() { l.gate.Close() }

// Interval returns the configured controller tick period.
func (l *Limiter) Interval() time.Duration { return l.cfg.Interval }

// Observe runs one controller tick against the observation and adjusts
// the gate limit.
func (l *Limiter) Observe(obs Observation) {
	l.mu.Lock()
	defer l.mu.Unlock()

	// Track the latency floor from quiet, healthy intervals.
	if obs.CommitP50 > 0 && (l.floorP50 == 0 || obs.CommitP50 < l.floorP50) {
		l.floorP50 = obs.CommitP50
	}

	attempts := obs.Commits + obs.StormAborts
	if attempts == 0 {
		// Idle interval: nothing to learn. An open breaker still cools
		// down so an idle system doesn't stay clamped forever.
		if l.state == BreakerOpen {
			l.cool()
		}
		return
	}
	abortRate := float64(obs.StormAborts) / float64(attempts)

	latencyBad := false
	if obs.CommitP99 > 0 {
		if l.cfg.LatencyTarget > 0 {
			latencyBad = obs.CommitP99 > l.cfg.LatencyTarget
		} else if l.floorP50 > 0 {
			latencyBad = float64(obs.CommitP99) > l.cfg.LatencyInflation*float64(l.floorP50)
		}
	}

	switch l.state {
	case BreakerOpen:
		l.cool()
	case BreakerProbing:
		if abortRate >= l.cfg.AbortBreak {
			l.trip()
			return
		}
		if abortRate >= l.cfg.AbortShrink || latencyBad {
			l.healthyTicks = 0
			l.shrink()
			return
		}
		l.healthyTicks++
		l.grow()
		if l.healthyTicks >= 3 {
			l.state = BreakerClosed
		}
	case BreakerClosed:
		if abortRate >= l.cfg.AbortBreak {
			l.trip()
			return
		}
		if abortRate >= l.cfg.AbortShrink || latencyBad {
			l.shrink()
			return
		}
		l.grow()
	}
}

// cool advances the open breaker toward probing. Called under l.mu.
func (l *Limiter) cool() {
	l.cooldownLeft -= l.cfg.Interval
	if l.cooldownLeft <= 0 {
		l.state = BreakerProbing
		l.healthyTicks = 0
	}
}

// trip opens the breaker and clamps the limit. Called under l.mu.
func (l *Limiter) trip() {
	l.state = BreakerOpen
	l.cooldownLeft = l.cfg.Cooldown
	l.trips++
	l.gate.SetLimit(l.cfg.MinLimit)
}

// shrink applies the multiplicative decrease. Called under l.mu.
func (l *Limiter) shrink() {
	cur := l.gate.Limit()
	next := int(float64(cur) * l.cfg.Beta)
	if next < l.cfg.MinLimit {
		next = l.cfg.MinLimit
	}
	if next != cur {
		l.shrinks++
		l.gate.SetLimit(next)
	}
}

// grow applies the additive increase. Called under l.mu.
func (l *Limiter) grow() {
	cur := l.gate.Limit()
	next := cur + l.cfg.Step
	if next > l.cfg.MaxLimit {
		next = l.cfg.MaxLimit
	}
	if next != cur {
		l.grows++
		l.gate.SetLimit(next)
	}
}

// Stats is a snapshot of the limiter: gate counters plus controller
// state, suitable for the sicost_admission expvar.
type Stats struct {
	Gate     GateStats
	Breaker  BreakerState
	FloorP50 time.Duration // learned no-queueing commit p50 floor
	Trips    uint64        // breaker openings
	Shrinks  uint64        // multiplicative decreases
	Grows    uint64        // additive increases
}

// Stats snapshots the limiter.
func (l *Limiter) Stats() Stats {
	l.mu.Lock()
	s := Stats{
		Breaker:  l.state,
		FloorP50: l.floorP50,
		Trips:    l.trips,
		Shrinks:  l.shrinks,
		Grows:    l.grows,
	}
	l.mu.Unlock()
	s.Gate = l.gate.Stats()
	return s
}

package histories

import (
	"errors"
	"testing"

	"sicost/internal/core"
)

func run(t *testing.T, mode core.CCMode, platform core.Platform, h string) *Result {
	t.Helper()
	res, err := Runner{Mode: mode, Platform: platform}.Run(h)
	if err != nil {
		t.Fatalf("history %q: %v", h, err)
	}
	return res
}

func runSI(t *testing.T, h string) *Result {
	return run(t, core.SnapshotFUW, core.PlatformPostgres, h)
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "x1", "q1(x)", "r(x)", "r1", "r1()", "w1(x)", "w1(x,y)",
		"c1(x)", "b1(x)", "r1(x,y)",
	}
	for _, h := range bad {
		if _, err := Parse(h); err == nil {
			t.Errorf("Parse(%q) accepted", h)
		}
	}
	steps, err := Parse("b1 r1(x) w1(x,5) u1(y) c1 a1")
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 6 || steps[2].Val != 5 || steps[3].Kind != OpSFU {
		t.Fatalf("parsed %+v", steps)
	}
}

func TestRunnerErrors(t *testing.T) {
	r := Runner{Mode: core.SnapshotFUW}
	if _, err := r.Run("r1(x)"); err == nil {
		t.Fatal("use before begin accepted")
	}
	if _, err := r.Run("b1 b1"); err == nil {
		t.Fatal("double begin accepted")
	}
	if _, err := r.Run("bogus"); err == nil {
		t.Fatal("parse error not propagated")
	}
}

// --- The phenomena catalogue of Berenson et al. (the paper's ref [2]),
// executed against each concurrency-control mode. ---

// P0 dirty write: w1(x) then w2(x) before c1. Every mode must prevent
// t2 overwriting uncommitted data — here by blocking on the row lock.
func TestP0DirtyWrite(t *testing.T) {
	for _, mode := range []core.CCMode{core.SnapshotFUW, core.Strict2PL, core.SerializableSI} {
		res := run(t, mode, core.PlatformPostgres, "b1 b2 w1(x,1) w2(x,2) c1")
		// Step 3 (w2) must have blocked at the time it was issued.
		if res.Steps[3].Step.Kind != OpWrite || res.Steps[3].Step.Txn != 2 {
			t.Fatalf("%v: unexpected step order %+v", mode, res.Steps)
		}
		// After c1, w2 resolved: under SI it must have failed (FUW);
		// under 2PL it proceeds.
		switch mode {
		case core.Strict2PL:
			if res.Steps[3].Outcome == Blocked {
				t.Fatalf("2PL: w2 never resolved")
			}
		default:
			if res.Steps[3].Outcome != Failed || !errors.Is(res.Steps[3].Err, core.ErrSerialization) {
				t.Fatalf("%v: w2 outcome %v err %v, want FUW failure", mode, res.Steps[3].Outcome, res.Steps[3].Err)
			}
		}
	}
}

// P1 dirty read: t2 must never see t1's uncommitted write.
func TestP1DirtyRead(t *testing.T) {
	for _, mode := range []core.CCMode{core.SnapshotFUW, core.SerializableSI} {
		res := run(t, mode, core.PlatformPostgres, "b1 b2 w1(x,7) r2(x) c1 c2")
		if res.Steps[3].Outcome != OK {
			t.Fatalf("%v: snapshot read blocked or failed: %+v", mode, res.Steps[3])
		}
		if got := res.Value(3); got != 0 {
			t.Fatalf("%v: dirty read saw %d", mode, got)
		}
	}
	// 2PL: the read BLOCKS until t1 commits, then sees the committed 7.
	res := run(t, core.Strict2PL, core.PlatformPostgres, "b1 b2 w1(x,7) r2(x) c1 c2")
	if res.Steps[3].Outcome != OK || res.Value(3) != 7 {
		t.Fatalf("2PL: read outcome %v val %d", res.Steps[3].Outcome, res.Value(3))
	}
}

// P2 fuzzy (non-repeatable) read: two reads of x in t1 straddling a
// committed update by t2.
func TestP2FuzzyRead(t *testing.T) {
	for _, mode := range []core.CCMode{core.SnapshotFUW, core.SerializableSI} {
		res := run(t, mode, core.PlatformPostgres, "b1 r1(x) b2 w2(x,9) c2 r1(x) c1")
		if res.Value(1) != res.Value(5) {
			t.Fatalf("%v: non-repeatable read: %d then %d", mode, res.Value(1), res.Value(5))
		}
		// Under SSI this read-write pattern may doom t1 (false
		// positive) but the values seen must still be stable; under
		// plain SI the commit succeeds.
		if mode == core.SnapshotFUW && !res.Committed[1] {
			t.Fatalf("SI: reader aborted: %v", res.FinalErrs[1])
		}
	}
}

// P4 lost update: r1(x) r2(x) w2(x) c2 then w1(x) — t1's write must not
// silently clobber t2's.
func TestP4LostUpdate(t *testing.T) {
	res := runSI(t, "b1 b2 r1(x) r2(x) w2(x,10) c2 w1(x,20) c1")
	w1 := res.Steps[6]
	if w1.Outcome != Failed || !errors.Is(w1.Err, core.ErrSerialization) {
		t.Fatalf("SI must abort the late writer: %+v", w1)
	}
	if res.Committed[1] {
		t.Fatal("t1 must not commit after the failed write")
	}
	// Final value is t2's.
	chk := runSI(t, "b3 r3(x) c3") // fresh DB: value is 0; this line is a smoke check of the harness itself
	_ = chk
}

// A5A read skew: t1 reads x, t2 updates x and y and commits, t1 reads y.
// Snapshot modes must give t1 a consistent (old,old) view.
func TestA5AReadSkew(t *testing.T) {
	res := runSI(t, "b1 r1(x) b2 w2(x,1) w2(y,1) c2 r1(y) c1")
	if res.Value(1) != 0 || res.Value(6) != 0 {
		t.Fatalf("read skew: saw x=%d y=%d", res.Value(1), res.Value(6))
	}
}

// A5B write skew: the signature SI anomaly. Allowed under plain SI,
// prevented under SSI and 2PL.
func TestA5BWriteSkew(t *testing.T) {
	h := "b1 b2 r1(x) r1(y) r2(x) r2(y) w1(x,1) w2(y,1) c1 c2"

	si := runSI(t, h)
	if !si.Committed[1] || !si.Committed[2] {
		t.Fatalf("plain SI must allow write skew: %v / %v", si.FinalErrs[1], si.FinalErrs[2])
	}

	ssi := run(t, core.SerializableSI, core.PlatformPostgres, h)
	if ssi.Committed[1] && ssi.Committed[2] {
		t.Fatal("SSI let both write-skew transactions commit")
	}

	twoPL := run(t, core.Strict2PL, core.PlatformPostgres, h)
	if twoPL.Committed[1] && twoPL.Committed[2] {
		t.Fatal("2PL let both write-skew transactions commit")
	}
}

// The read-only anomaly of Fekete/O'Neil/O'Neil 2004 in DSL form:
// t2 deposits to x; t3 (read-only) sees x new, y old; t1 writes y from
// the old snapshot. All three commit under SI; SSI prevents it.
func TestReadOnlyAnomalyDSL(t *testing.T) {
	h := "b1 r1(x) r1(y) b2 r2(x) w2(x,20) c2 b3 r3(x) r3(y) c3 w1(y,-11) c1"
	si := runSI(t, h)
	if !si.Committed[1] || !si.Committed[2] || !si.Committed[3] {
		t.Fatalf("SI must commit all three: %v %v %v", si.FinalErrs[1], si.FinalErrs[2], si.FinalErrs[3])
	}
	if si.Value(8) != 20 || si.Value(9) != 0 {
		t.Fatalf("t3 saw x=%d y=%d, want 20/0", si.Value(8), si.Value(9))
	}

	ssi := run(t, core.SerializableSI, core.PlatformPostgres, h)
	if ssi.Committed[1] && ssi.Committed[2] && ssi.Committed[3] {
		t.Fatal("SSI let the read-only anomaly through")
	}
}

// The §II-C select-for-update interleaving, platform by platform:
// begin(T) begin(U) u1(x) c1 w2(x) c2.
func TestSfuInterleavingPerPlatform(t *testing.T) {
	h := "b1 b2 u1(x) c1 w2(x,5) c2"
	pg := run(t, core.SnapshotFUW, core.PlatformPostgres, h)
	if pg.Steps[4].Outcome != OK || !pg.Committed[2] {
		t.Fatalf("PostgreSQL must allow the interleaving: %+v", pg.Steps[4])
	}
	cm := run(t, core.SnapshotFUW, core.PlatformCommercial, h)
	if cm.Steps[4].Outcome != Failed || !errors.Is(cm.Steps[4].Err, core.ErrSerialization) {
		t.Fatalf("commercial must reject the write: %+v", cm.Steps[4])
	}
}

// Lock waits resolve: a blocked writer proceeds after the holder
// aborts.
func TestBlockedWriterResolvesOnAbort(t *testing.T) {
	res := runSI(t, "b1 b2 w1(x,1) w2(x,2) a1 c2")
	w2 := res.Steps[3]
	if w2.Outcome != OK {
		t.Fatalf("waiter after abort: %+v", w2)
	}
	if !res.Committed[2] {
		t.Fatalf("t2: %v", res.FinalErrs[2])
	}
}

// Custom initial items are honoured.
func TestCustomItems(t *testing.T) {
	res, err := Runner{
		Mode:  core.SnapshotFUW,
		Items: map[string]int64{"acct": 100},
	}.Run("b1 r1(acct) c1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value(1) != 100 {
		t.Fatalf("read %d", res.Value(1))
	}
}

// A history ending with a still-blocked transaction is cleaned up.
func TestDanglingBlockedTxnCleanedUp(t *testing.T) {
	res := runSI(t, "b1 b2 w1(x,1) w2(x,2)")
	if res.Steps[3].Outcome != Blocked {
		t.Fatalf("w2 should be blocked at history end: %+v", res.Steps[3])
	}
	// The harness force-aborts; no goroutine leak, no panic. t2's fate
	// is recorded in FinalErrs (possibly nil error if it won the race).
}

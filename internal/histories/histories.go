// Package histories provides a deterministic interleaving harness: a
// compact textual DSL for multi-transaction schedules, executed step by
// step against the engine. It exists to port the classic isolation-level
// conformance histories — the phenomena catalogue of Berenson et al.
// ("A Critique of ANSI SQL Isolation Levels", SIGMOD 1995, the paper's
// reference [2]) — as an executable test matrix across the engine's
// concurrency-control modes.
//
// A history is a whitespace-separated list of steps:
//
//	b1          begin transaction 1
//	r1(x)       transaction 1 reads item x
//	w1(x,5)     transaction 1 writes value 5 to item x
//	u1(x)       transaction 1 SELECT ... FOR UPDATE on item x
//	c1          commit transaction 1
//	a1          abort transaction 1
//
// Items are single-table integer keys pre-loaded by Run. Steps that
// block (lock waits) are detected: the harness runs each step in the
// owning transaction's goroutine and reports Blocked when the step does
// not complete within a grace period; a blocked transaction's next
// steps wait for it to unblock.
package histories

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"sicost/internal/core"
	"sicost/internal/engine"
)

// Table is the single table histories run against.
const Table = "H"

// OpKind is a step's operation.
type OpKind uint8

// Step operations.
const (
	OpBegin OpKind = iota
	OpRead
	OpWrite
	OpSFU
	OpCommit
	OpAbort
)

// Step is one parsed history step.
type Step struct {
	Kind OpKind
	Txn  int
	Item string
	Val  int64
}

// Parse parses the DSL.
func Parse(history string) ([]Step, error) {
	var steps []Step
	for _, tok := range strings.Fields(history) {
		s, err := parseStep(tok)
		if err != nil {
			return nil, err
		}
		steps = append(steps, s)
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("histories: empty history")
	}
	return steps, nil
}

func parseStep(tok string) (Step, error) {
	if len(tok) < 2 {
		return Step{}, fmt.Errorf("histories: bad step %q", tok)
	}
	var kind OpKind
	switch tok[0] {
	case 'b':
		kind = OpBegin
	case 'r':
		kind = OpRead
	case 'w':
		kind = OpWrite
	case 'u':
		kind = OpSFU
	case 'c':
		kind = OpCommit
	case 'a':
		kind = OpAbort
	default:
		return Step{}, fmt.Errorf("histories: unknown op in %q", tok)
	}
	rest := tok[1:]
	argStart := strings.IndexByte(rest, '(')
	numPart := rest
	if argStart >= 0 {
		numPart = rest[:argStart]
	}
	txn, err := strconv.Atoi(numPart)
	if err != nil {
		return Step{}, fmt.Errorf("histories: bad transaction number in %q", tok)
	}
	s := Step{Kind: kind, Txn: txn}
	switch kind {
	case OpRead, OpWrite, OpSFU:
		if argStart < 0 || !strings.HasSuffix(rest, ")") {
			return Step{}, fmt.Errorf("histories: %q needs (item...) argument", tok)
		}
		args := rest[argStart+1 : len(rest)-1]
		parts := strings.Split(args, ",")
		s.Item = strings.TrimSpace(parts[0])
		if s.Item == "" {
			return Step{}, fmt.Errorf("histories: empty item in %q", tok)
		}
		if kind == OpWrite {
			if len(parts) != 2 {
				return Step{}, fmt.Errorf("histories: write %q needs (item,value)", tok)
			}
			v, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
			if err != nil {
				return Step{}, fmt.Errorf("histories: bad value in %q", tok)
			}
			s.Val = v
		} else if len(parts) != 1 {
			return Step{}, fmt.Errorf("histories: %q takes a single item", tok)
		}
	default:
		if argStart >= 0 {
			return Step{}, fmt.Errorf("histories: %q takes no argument", tok)
		}
	}
	return s, nil
}

// Outcome describes how one step ended.
type Outcome uint8

// Step outcomes.
const (
	OK Outcome = iota
	// Blocked: the step did not complete within the grace period
	// (waiting on a lock); it may complete later, after a subsequent
	// step unblocks it.
	Blocked
	// Failed: the step returned an error (serialization failure,
	// deadlock, not-found...).
	Failed
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Blocked:
		return "blocked"
	default:
		return "failed"
	}
}

// StepResult is the execution record of one step.
type StepResult struct {
	Step    Step
	Outcome Outcome
	// Err is set when Outcome is Failed (or when a Blocked step later
	// completed with an error; see Result.FinalErrs).
	Err error
	// Val is the value read by a completed read/sfu step.
	Val int64
}

// Result is a full history execution record.
type Result struct {
	Steps []StepResult
	// Committed reports, per transaction number, whether its commit
	// completed successfully.
	Committed map[int]bool
	// FinalErrs maps transaction number → the error that terminated it
	// (nil for clean commits/aborts). A transaction whose step stayed
	// blocked past the end of the history is aborted by the harness and
	// recorded here with its eventual error.
	FinalErrs map[int]error
}

// Value returns the value read by the i-th step (which must be a
// completed read).
func (r *Result) Value(i int) int64 { return r.Steps[i].Val }

// txnDriver owns one transaction's goroutine.
type txnDriver struct {
	tx    *engine.Tx
	steps chan Step
	done  chan StepResult
}

// Runner executes histories against fresh engine instances.
type Runner struct {
	// Mode and Platform configure the engine.
	Mode     core.CCMode
	Platform core.Platform
	// Items are pre-loaded keys with initial values.
	Items map[string]int64
	// Grace is how long a step may run before being declared Blocked
	// (default 25ms).
	Grace time.Duration
}

// Run parses and executes the history on a fresh database.
func (r Runner) Run(history string) (*Result, error) {
	steps, err := Parse(history)
	if err != nil {
		return nil, err
	}
	db := engine.Open(engine.Config{Mode: r.Mode, Platform: r.Platform})
	defer db.Close()
	schema := &core.Schema{
		Name: Table,
		Columns: []core.Column{
			{Name: "K", Kind: core.KindString, NotNull: true},
			{Name: "V", Kind: core.KindInt, NotNull: true},
		},
		PK: 0,
	}
	if err := db.CreateTable(schema); err != nil {
		return nil, err
	}
	seed := db.Begin()
	items := r.Items
	if items == nil {
		items = map[string]int64{"x": 0, "y": 0, "z": 0}
	}
	for k, v := range items {
		if err := seed.Insert(Table, core.Record{core.Str(k), core.Int(v)}); err != nil {
			return nil, err
		}
	}
	if err := seed.Commit(); err != nil {
		return nil, err
	}

	grace := r.Grace
	if grace == 0 {
		grace = 25 * time.Millisecond
	}

	res := &Result{
		Committed: map[int]bool{},
		FinalErrs: map[int]error{},
	}
	drivers := map[int]*txnDriver{}
	blocked := map[int]bool{}

	// fail tears the drivers down on a structural schedule error, so
	// the deferred db.Close (which drains in-flight transactions) finds
	// nothing live. Aborting a transaction whose goroutine is blocked
	// in a step ejects the waiter; the step's verdict lands in the
	// buffered done channel and is discarded with the driver.
	fail := func(err error) (*Result, error) {
		for _, d := range drivers {
			d.tx.Abort()
			close(d.steps)
		}
		return nil, err
	}

	startDriver := func(txn int) *txnDriver {
		d := &txnDriver{
			tx:    db.Begin(),
			steps: make(chan Step),
			done:  make(chan StepResult, 1),
		}
		d.tx.SetTag(fmt.Sprintf("t%d", txn))
		go func() {
			for s := range d.steps {
				d.done <- execStep(d.tx, s)
			}
		}()
		drivers[txn] = d
		return d
	}

	for _, s := range steps {
		if s.Kind == OpBegin {
			if drivers[s.Txn] != nil {
				return fail(fmt.Errorf("histories: transaction %d begun twice", s.Txn))
			}
			startDriver(s.Txn)
			res.Steps = append(res.Steps, StepResult{Step: s, Outcome: OK})
			continue
		}
		d := drivers[s.Txn]
		if d == nil {
			return fail(fmt.Errorf("histories: transaction %d used before begin", s.Txn))
		}
		if blocked[s.Txn] {
			return fail(fmt.Errorf("histories: transaction %d is blocked; cannot run %v", s.Txn, s))
		}
		d.steps <- s
		select {
		case sr := <-d.done:
			res.Steps = append(res.Steps, sr)
			recordTerminal(res, sr)
			// A retriable failure leaves the transaction in the
			// aborted state; roll it back immediately (as a real
			// client would), releasing its locks for other waiters.
			if sr.Err != nil && core.IsRetriable(sr.Err) {
				d.tx.Abort()
			}
		case <-time.After(grace):
			blocked[s.Txn] = true
			res.Steps = append(res.Steps, StepResult{Step: s, Outcome: Blocked})
		}
		// A completed step may have unblocked earlier waiters; give each
		// blocked transaction a grace period to surface its completion.
		for txn, d2 := range drivers {
			if !blocked[txn] {
				continue
			}
			select {
			case sr := <-d2.done:
				blocked[txn] = false
				// Patch the recorded Blocked step with its eventual
				// completion.
				for i := len(res.Steps) - 1; i >= 0; i-- {
					if res.Steps[i].Step.Txn == txn && res.Steps[i].Outcome == Blocked {
						sr.Outcome = OK
						if sr.Err != nil {
							sr.Outcome = Failed
						}
						sr.Step = res.Steps[i].Step
						res.Steps[i] = sr
						break
					}
				}
				recordTerminal(res, sr)
				if sr.Err != nil && core.IsRetriable(sr.Err) {
					d2.tx.Abort()
				}
			case <-time.After(grace):
			}
		}
	}

	// Drain: give still-blocked steps a chance to finish, then abort
	// whatever remains.
	for txn, d := range drivers {
		if blocked[txn] {
			select {
			case sr := <-d.done:
				recordTerminal(res, sr)
			case <-time.After(grace):
				d.tx.Abort() // force-release; the blocked step will fail
				select {
				case sr := <-d.done:
					res.FinalErrs[txn] = sr.Err
				case <-time.After(grace):
				}
			}
		}
		close(d.steps)
		d.tx.Abort() // no-op when finished
	}
	return res, nil
}

func recordTerminal(res *Result, sr StepResult) {
	switch sr.Step.Kind {
	case OpCommit:
		if sr.Err == nil {
			res.Committed[sr.Step.Txn] = true
		} else {
			res.FinalErrs[sr.Step.Txn] = sr.Err
		}
	case OpAbort:
		res.FinalErrs[sr.Step.Txn] = nil
	default:
		if sr.Err != nil {
			res.FinalErrs[sr.Step.Txn] = sr.Err
		}
	}
}

// execStep runs one step on its transaction.
func execStep(tx *engine.Tx, s Step) StepResult {
	sr := StepResult{Step: s, Outcome: OK}
	switch s.Kind {
	case OpRead:
		rec, err := tx.Get(Table, core.Str(s.Item))
		if err != nil {
			sr.Outcome, sr.Err = Failed, err
			return sr
		}
		sr.Val = rec[1].Int64()
	case OpWrite:
		err := tx.Update(Table, core.Str(s.Item), core.Record{core.Str(s.Item), core.Int(s.Val)})
		if err != nil {
			sr.Outcome, sr.Err = Failed, err
		}
	case OpSFU:
		rec, err := tx.ReadForUpdate(Table, core.Str(s.Item))
		if err != nil {
			sr.Outcome, sr.Err = Failed, err
			return sr
		}
		sr.Val = rec[1].Int64()
	case OpCommit:
		if err := tx.Commit(); err != nil {
			sr.Outcome, sr.Err = Failed, err
		}
	case OpAbort:
		tx.Abort()
	}
	return sr
}

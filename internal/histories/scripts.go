package histories

// Schedule is a named step-level interleaving from the paper (or its
// reference lineage), expressed in this package's DSL so it can be
// replayed both by the wall-clock Runner here and by the deterministic
// scheduler in internal/detsim. Each schedule is a concrete witness: a
// specific interleaving whose outcome differs across concurrency-control
// modes and platforms, which is exactly what the paper's §II argues from.
type Schedule struct {
	Name string
	// Section cites the paper section (or reference) the interleaving
	// illustrates.
	Section string
	// Script is the interleaving in the histories DSL.
	Script string
	// Items pre-loads the table (nil means the Runner default x=y=z=0).
	Items map[string]int64
	// Doc explains what the interleaving demonstrates.
	Doc string
}

// The paper's anomaly interleavings as replayable schedule scripts. Tests
// in internal/detsim assert the per-mode outcomes; EXPERIMENTS.md maps
// each entry to its test.
var (
	// WriteSkew is the canonical SI anomaly of §II-B: two transactions
	// each read both items (seeing x+y = 100), then disjointly overdraw
	// one item each. Under plain SI both commit and the invariant
	// x+y >= 0 is violated; S2PL and SSI prevent it.
	WriteSkew = Schedule{
		Name:    "write-skew",
		Section: "§II-B",
		Script:  "b1 b2 r1(x) r1(y) r2(x) r2(y) w1(x,-10) w2(y,-10) c1 c2",
		Items:   map[string]int64{"x": 50, "y": 50},
		Doc: "both transactions see x+y=100 and withdraw 60 from different " +
			"items; committing both leaves x+y=-20",
	}

	// PromotionSFUGap is the §II-C interleaving: the write-skew pair with
	// t1's read of y promoted to SELECT FOR UPDATE (the promotion
	// strategy applied to the vulnerable edge t1->t2). The commercial
	// platform treats the committed sfu like a write, so t2's blocked
	// w2(y) aborts on wakeup; PostgreSQL's FOR UPDATE leaves no trace
	// after commit, so the identical interleaving still commits write
	// skew — the gap the paper calls out.
	PromotionSFUGap = Schedule{
		Name:    "promotion-sfu-gap",
		Section: "§II-C",
		Script:  "b1 b2 u1(y) r1(x) r2(x) r2(y) w1(x,-10) w2(y,-10) c1 c2",
		Items:   map[string]int64{"x": 50, "y": 50},
		Doc: "promotion via FOR UPDATE closes the anomaly on the commercial " +
			"platform but not on PostgreSQL",
	}

	// ReadOnlyAnomaly is the read-only transaction anomaly of Fekete,
	// O'Neil & O'Neil (2004), the paper's reference for why even
	// read-only programs participate in dangerous structures. Without t3
	// the history of t1 (withdraw from y, seeing neither account funded)
	// and t2 (deposit into x) is serializable as t1;t2 — but t3's
	// snapshot (after t2's deposit, before t1's overdraft) is
	// inconsistent with that order, closing the cycle t1->t2->t3->t1.
	ReadOnlyAnomaly = Schedule{
		Name:    "read-only-anomaly",
		Section: "§II-B (Fekete/O'Neil/O'Neil 2004)",
		Script:  "b1 r1(x) r1(y) b2 r2(x) w2(x,20) c2 b3 r3(x) r3(y) c3 w1(y,-11) c1",
		Items:   map[string]int64{"x": 0, "y": 0},
		Doc: "t3 observes t2's deposit but not t1's withdrawal, forcing " +
			"t1 after t3 and before t2 simultaneously",
	}

	// LostUpdateFUW shows the First-Updater-Wins rule both platforms
	// share (§II-A): t2's write blocks behind t1's row lock and, once t1
	// commits, aborts with a serialization failure instead of silently
	// losing t1's update.
	LostUpdateFUW = Schedule{
		Name:    "lost-update-fuw",
		Section: "§II-A",
		Script:  "b1 b2 r1(x) r2(x) w1(x,1) w2(x,2) c1 c2",
		Items:   map[string]int64{"x": 0},
		Doc: "concurrent writers of one row: the second blocks, then " +
			"aborts when the first commits (FUW); under 2PL the same " +
			"script ends in an upgrade deadlock",
	}
)

// PaperSchedules lists every named schedule, in presentation order.
func PaperSchedules() []Schedule {
	return []Schedule{WriteSkew, PromotionSFUGap, ReadOnlyAnomaly, LostUpdateFUW}
}

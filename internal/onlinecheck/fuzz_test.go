package onlinecheck_test

import (
	"testing"

	"sicost/internal/core"
	"sicost/internal/onlinecheck"
	"sicost/internal/trace"
)

// decodeStream turns fuzz bytes into an arbitrary event stream: four
// bytes per event choose kind (including out-of-schema values), tx id
// (including the invalid 0), item and CSN. Reorderings, truncations,
// duplications and garbage all arise naturally from the byte space.
func decodeStream(data []byte) []trace.Event {
	keys := []string{"a", "b", "c", "d"}
	var evs []trace.Event
	for i := 0; i+3 < len(data) && len(evs) < 4096; i += 4 {
		evs = append(evs, trace.Event{
			TS:    int64(i + 1),
			Kind:  trace.Kind(data[i] % 20), // 16 real kinds + garbage
			Tx:    uint64(data[i+1] % 8),
			Table: "H",
			Key:   core.Str(keys[data[i+2]%4]),
			CSN:   uint64(data[i+3] % 16),
		})
	}
	return evs
}

// sequentialStream builds a validator-accepted, trivially serializable
// stream from fuzz bytes: n transactions, each reading the previous
// version of one item and writing the next, strictly one at a time.
func sequentialStream(data []byte) []trace.Event {
	keys := []string{"a", "b", "c", "d"}
	n := 2 + int(byteAt(data, 0)%14)
	lastVer := map[string]uint64{}
	var evs []trace.Event
	ts := int64(0)
	stamp := func(e trace.Event) {
		ts++
		e.TS = ts
		evs = append(evs, e)
	}
	for i := 1; i <= n; i++ {
		tx := uint64(i)
		k := keys[byteAt(data, i)%4]
		start := uint64(i - 1)
		stamp(trace.Event{Kind: trace.EvBegin, Tx: tx, CSN: start})
		if v, ok := lastVer[k]; ok {
			stamp(trace.Event{Kind: trace.EvReadVer, Tx: tx, Table: "H", Key: core.Str(k), CSN: v})
		}
		stamp(trace.Event{Kind: trace.EvWriteVer, Tx: tx, Table: "H", Key: core.Str(k), CSN: uint64(i)})
		stamp(trace.Event{Kind: trace.EvCommit, Tx: tx, CSN: uint64(i)})
		lastVer[k] = uint64(i)
	}
	return evs
}

func byteAt(data []byte, i int) byte {
	if len(data) == 0 {
		return 0
	}
	return data[i%len(data)]
}

// FuzzOnlineCheck drives the checker with arbitrary event streams and
// with mutated valid streams. Contract under fuzz:
//
//   - never panic, whatever the bytes decode to;
//   - fully deterministic: the same stream yields the identical report;
//   - bounded: the committed window never exceeds the commit count and
//     pending state never exceeds the transaction-id space;
//   - never a false positive: a validator-accepted serializable stream,
//     and every truncation of it, comes back clean.
func FuzzOnlineCheck(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	// A begin/read/write/commit quartet for one tx.
	f.Add([]byte{0, 1, 0, 3, 14, 1, 0, 2, 15, 1, 0, 5, 9, 1, 0, 5})
	// Unknown kinds and tx 0.
	f.Add([]byte{19, 0, 1, 1, 18, 3, 2, 9, 9, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Leg 1: arbitrary stream — no panic, deterministic, bounded.
		evs := decodeStream(data)
		cfg := onlinecheck.Config{SIRules: true, Batch: 7}
		a := onlinecheck.Run(evs, cfg)
		b := onlinecheck.Run(evs, cfg)
		if a.Describe() != b.Describe() || a.Stats != b.Stats {
			t.Fatalf("nondeterministic report on identical stream:\n%s\nvs\n%s", a.Describe(), b.Describe())
		}
		if a.Stats.Window > int(a.Stats.Commits) {
			t.Fatalf("window %d exceeds commit count %d", a.Stats.Window, a.Stats.Commits)
		}
		if a.Stats.Pending > 8 {
			t.Fatalf("pending %d exceeds the 8-wide tx-id space", a.Stats.Pending)
		}

		// Leg 2: a valid sequential stream must be accepted by the
		// strict validator and come back clean — and stay clean under
		// every truncation (fewer events can only shrink the graph).
		valid := sequentialStream(data)
		if err := trace.Validate(valid); err != nil {
			t.Fatalf("generator produced an invalid stream: %v", err)
		}
		rep := onlinecheck.Run(valid, cfg)
		if !rep.Serializable || rep.SIViolations != 0 {
			t.Fatalf("false positive on a valid sequential stream:\n%s", rep.Describe())
		}
		cut := int(byteAt(data, 1)) % (len(valid) + 1)
		trunc := onlinecheck.Run(valid[:cut], cfg)
		if !trunc.Serializable || trunc.SIViolations != 0 {
			t.Fatalf("false positive on a truncated valid stream (cut=%d):\n%s", cut, trunc.Describe())
		}

		// Leg 3: a duplicated tail (events for already-terminated
		// transactions) must not panic and must stay deterministic.
		dup := append(append([]trace.Event(nil), valid...), valid[cut:]...)
		d1 := onlinecheck.Run(dup, cfg)
		d2 := onlinecheck.Run(dup, cfg)
		if d1.Describe() != d2.Describe() {
			t.Fatal("nondeterministic report on duplicated stream")
		}
	})
}

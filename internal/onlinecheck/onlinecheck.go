// Package onlinecheck is the windowed online isolation checker: it
// consumes the transaction-lifecycle event stream (internal/trace) as
// it is emitted and verifies, continuously, that the execution obeys
// snapshot isolation's read/write rules and stays serializable — the
// live counterpart of the post-hoc MVSG analysis in internal/checker
// and the brute-force oracle in internal/detsim.
//
// The algorithm is timestamp-driven, after the incremental checkers of
// "Online Timestamp-based Transactional Isolation Checking" and
// "Efficient Black-box Checking of Snapshot Isolation" (see PAPERS.md):
//
//   - Per-transaction state (begin/snapshot CSN from EvBegin, the exact
//     read set from EvReadVer, the committed write set from EvWriteVer)
//     is buffered until the transaction's terminal event. Aborted
//     transactions are discarded — they contribute no dependencies.
//   - On EvCommit the transaction is integrated into a sliding window
//     of committed transactions. Per-item indexes (the committed
//     version list ordered by CSN, and the committed readers with
//     their read-version CSNs) localize dependency derivation: WR, WW
//     and RW edges are found by binary search in timestamp order, not
//     by all-pairs comparison.
//   - Every new edge is incident on the committing transaction, so one
//     bounded depth-first search from it decides whether the commit
//     closed a dependency cycle. A cycle is reported live as a
//     structured Violation: the participating transactions, the edge
//     chain, and the window bounds at detection.
//   - Snapshot-isolation rule violations (a read newer than the
//     snapshot, a read made stale by a version the snapshot should
//     have seen, two concurrent committed writers of one item — the
//     lost-update/First-Updater-Wins contract) are checked from the
//     same indexes when Config.SIRules is on.
//
// Memory is O(window), not O(history): a committed transaction is
// retired once no transaction that could still form an edge to it can
// exist. The watermark below which retirement is safe is
// min(floorPrev, earliest snapshot of any in-flight transaction),
// where floorPrev — the highest published CSN delivered up to the
// previous drain pass — bounds the snapshot of any transaction the
// checker has not seen yet (an EvBegin that missed pass P was pushed
// after pass P-1's events were published, so its snapshot includes
// them). Retired state is pruned from every index; a per-item
// high-water mark of pruned versions keeps the stale-read rule sound
// across pruning. The window consequently spans the oldest in-flight
// snapshot — one long-running (or lock-parked) transaction stretches
// it, exactly as a long-running transaction stretches a real MVCC
// system's version horizon.
//
// The checker never blocks the engine (it reads from the trace
// recorder's rings via trace.Subscribe), never panics on malformed
// streams (fuzzed in FuzzOnlineCheck), and degrades only toward false
// negatives on gappy or adversarial input: verdicts it does report are
// backed by edges actually present in the stream.
package onlinecheck

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
	"sync"

	"sicost/internal/checker"
	"sicost/internal/core"
	"sicost/internal/trace"
)

// DefaultMaxViolations bounds how many structured violation reports are
// retained (counters keep counting past it).
const DefaultMaxViolations = 16

// DefaultBatch is the window-discipline stride: how many events Ingest
// processes before advancing the retirement watermark and pruning, in
// addition to every delivered pass boundary. Chosen so the window stays
// O(concurrent transactions) even when a starved subscription pump
// delivers tens of thousands of events in one pass (on a saturated
// box the drain ticker can lag far behind the clients).
const DefaultBatch = 512

// Config parameterizes a Checker.
type Config struct {
	// SIRules enables the snapshot-isolation read/write rule checks
	// (future reads, stale reads, concurrent committed writers). Leave
	// it off for Strict2PL executions, where reads legitimately see
	// versions newer than the transaction's begin point; cycle checking
	// runs regardless.
	SIRules bool
	// MaxViolations bounds retained Violation records (0 means
	// DefaultMaxViolations). Counters are exact beyond the bound.
	MaxViolations int
	// Batch is the window-discipline stride (0 means DefaultBatch):
	// Ingest retires after every Batch events as well as at every pass
	// boundary, and Run additionally chunks offline replays into
	// Batch-sized passes. A stride larger than the stream replays it in
	// one pass (the exactness mode the cross-validation suite uses).
	Batch int
}

// ViolationKind labels what rule a Violation breaks.
type ViolationKind uint8

// Violation kinds.
const (
	// Cycle: the committed history's dependency graph has a cycle — the
	// execution is not serializable.
	Cycle ViolationKind = iota
	// LostUpdate: two concurrent transactions both committed a write to
	// the same item, which SI's First-Updater-Wins rule forbids.
	LostUpdate
	// StaleRead: a transaction read a version older than one its
	// snapshot contains.
	StaleRead
	// FutureRead: a transaction read a version newer than its snapshot.
	FutureRead
)

// String names the kind.
func (k ViolationKind) String() string {
	switch k {
	case Cycle:
		return "cycle"
	case LostUpdate:
		return "lost-update"
	case StaleRead:
		return "stale-read"
	default:
		return "future-read"
	}
}

// WindowBounds snapshots the sliding window at detection time.
type WindowBounds struct {
	// Size is the number of committed transactions in the window.
	Size int
	// OldestCSN/NewestCSN are the lowest and highest commit CSNs held.
	OldestCSN, NewestCSN uint64
	// Watermark is the retirement watermark in force.
	Watermark uint64
}

// Violation is one detected isolation violation.
type Violation struct {
	Kind ViolationKind
	// Anomaly is the checker.ClassifyCycle name for Cycle violations.
	Anomaly string
	// Txs are the participating transaction ids; for cycles, the cycle
	// order with the first id repeated last.
	Txs []uint64
	// Edges is the dependency chain of a Cycle (one edge per step).
	Edges []checker.Dep
	// Table/Key name the item of an SI-rule violation.
	Table string
	Key   core.Value
	// CSN is the offending version (LostUpdate) or read version
	// (StaleRead/FutureRead).
	CSN uint64
	// Window is the window state when the violation was detected.
	Window WindowBounds
}

// String renders the violation on one line (cycles: the edge chain).
func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", v.Kind)
	if v.Kind == Cycle {
		fmt.Fprintf(&b, " (%s):", v.Anomaly)
		for i, d := range v.Edges {
			fmt.Fprintf(&b, " t%d --%s[%s.%v]-->", v.Txs[i], d.Kind, d.Table, d.Key)
		}
		if n := len(v.Txs); n > 0 {
			fmt.Fprintf(&b, " t%d", v.Txs[n-1])
		}
	} else {
		fmt.Fprintf(&b, ": tx")
		for _, id := range v.Txs {
			fmt.Fprintf(&b, " t%d", id)
		}
		fmt.Fprintf(&b, " on %s.%v (csn %d)", v.Table, v.Key, v.CSN)
	}
	fmt.Fprintf(&b, " [window %d, csn %d..%d, watermark %d]",
		v.Window.Size, v.Window.OldestCSN, v.Window.NewestCSN, v.Window.Watermark)
	return b.String()
}

// Stats are the checker's live counters — the expvar surface.
type Stats struct {
	// Events is the total events ingested; UnknownKind counts events
	// outside the schema, Ignored counts events dropped as inconsistent
	// (duplicate terminals, traffic after a terminal, version-CSN
	// collisions).
	Events, UnknownKind, Ignored uint64
	// Begins/Commits/Aborts count transaction outcomes seen; GapTxs
	// counts transactions whose commit arrived without a begin (ring
	// overflow or a truncated stream) — SI rules are skipped for those.
	Begins, Commits, Aborts, GapTxs uint64
	// Edges is the number of dependency edges derived (deduplicated).
	Edges uint64
	// Pending/Window are the current in-flight and committed-window
	// populations; MaxPending/MaxWindow their high-water marks — the
	// bounded-memory claim made checkable.
	Pending, MaxPending int
	Window, MaxWindow   int
	// Retired counts transactions pruned from the window; Watermark is
	// the current retirement watermark.
	Retired   uint64
	Watermark uint64
	// Violations counts everything detected; SIViolations the SI-rule
	// subset and Cycles the non-serializable subset.
	Violations, SIViolations, Cycles int
}

// Report is the checker's verdict over everything ingested.
type Report struct {
	// Txns is the number of committed transactions integrated.
	Txns int
	// Serializable is false once any dependency cycle was detected.
	Serializable bool
	// SIViolations counts snapshot-isolation rule violations (lost
	// updates, stale reads, future reads).
	SIViolations int
	// Violations are the retained structured reports, detection order,
	// capped at Config.MaxViolations.
	Violations []Violation
	// Stats is the final counter snapshot.
	Stats Stats
}

// Describe renders the report for humans, deterministically.
func (r *Report) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "online-checked %d transactions, %d edges, window peak %d (%d retired): ",
		r.Txns, r.Stats.Edges, r.Stats.MaxWindow, r.Stats.Retired)
	switch {
	case r.Serializable && r.SIViolations == 0:
		b.WriteString("serializable, SI rules hold\n")
	case r.Serializable:
		fmt.Fprintf(&b, "serializable, %d SI-rule violation(s)\n", r.SIViolations)
	default:
		fmt.Fprintf(&b, "NOT serializable (%d cycle(s), %d SI-rule violation(s))\n",
			r.Stats.Cycles, r.SIViolations)
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	return b.String()
}

// itemKey names one row.
type itemKey struct {
	table string
	key   core.Value
}

// version is one committed version of an item.
type version struct {
	csn uint64
	tx  uint64
}

// readerRec is one committed read of an item.
type readerRec struct {
	csn uint64 // version CSN the reader saw
	tx  uint64
}

// itemState holds the per-item indexes.
type itemState struct {
	versions []version   // ascending by csn
	readers  []readerRec // committed readers, unordered
	// prunedMax is the newest version CSN retired from this item; it
	// keeps the stale-read rule sound after pruning.
	prunedMax uint64
}

// ref is one read or write of a transaction.
type ref struct {
	item itemKey
	csn  uint64
}

// pendingTx buffers a transaction between its first event and its
// terminal.
type pendingTx struct {
	id    uint64
	start uint64
	begun bool // EvBegin/EvSnapshot seen: start is trustworthy
	// effStart substitutes for start in the watermark when begun is
	// false: the floor in force when the transaction was first seen (a
	// conservative snapshot lower bound for gap transactions).
	effStart uint64
	done     bool // terminal seen; later events are Ignored
	reads    []ref
	writes   []ref
}

// edge is one out-edge of a window node.
type edge struct {
	to   uint64
	kind checker.DepKind
	item itemKey
}

// txNode is one committed transaction in the window.
type txNode struct {
	id            uint64
	start, commit uint64
	begun         bool
	writer        bool
	out           []edge // insertion-ordered: deterministic DFS
	outSeen       map[uint64]uint8
	reads         []ref
	writes        []ref
}

// csnHeap orders window members by commit CSN for retirement.
type csnHeap []*txNode

func (h csnHeap) Len() int            { return len(h) }
func (h csnHeap) Less(i, j int) bool  { return h[i].commit < h[j].commit }
func (h csnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *csnHeap) Push(x interface{}) { *h = append(*h, x.(*txNode)) }
func (h *csnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// Checker is the online windowed isolation checker. Feed it event
// batches with Ingest (each batch = one drain pass; trace.Subscribe
// delivers exactly that), read live counters with Stats, and collect
// the verdict with Finalize. Safe for concurrent use.
type Checker struct {
	cfg Config

	mu      sync.Mutex
	pending map[uint64]*pendingTx
	window  map[uint64]*txNode
	byCSN   csnHeap
	items   map[itemKey]*itemState

	// floorPrev is the highest published CSN delivered through the
	// previous batch — the snapshot lower bound for transactions not
	// yet seen. maxSeen tracks the current batch.
	floorPrev, maxSeen uint64
	watermark          uint64
	// sincePass counts events since the last window-discipline stride.
	sincePass int

	stats      Stats
	violations []Violation
	cycles     int
}

// New creates a Checker.
func New(cfg Config) *Checker {
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = DefaultMaxViolations
	}
	if cfg.Batch <= 0 {
		cfg.Batch = DefaultBatch
	}
	return &Checker{
		cfg:     cfg,
		pending: make(map[uint64]*pendingTx),
		window:  make(map[uint64]*txNode),
		items:   make(map[itemKey]*itemState),
	}
}

// Attach creates a Checker and subscribes it to rec's event stream.
// Close the subscription before calling Finalize, so the final drain
// pass is delivered.
func Attach(rec *trace.Recorder, cfg Config, opts trace.SubOptions) (*Checker, *trace.Subscription) {
	c := New(cfg)
	return c, trace.Subscribe(rec, c.Ingest, opts)
}

// Run replays a recorded stream through a fresh checker and returns the
// verdict — the offline entry point (cmd/tracecheck, the
// cross-validation suite). The stream is chunked into cfg.Batch-sized
// passes so the window discipline applies.
func Run(events []trace.Event, cfg Config) *Report {
	c := New(cfg)
	if cfg.Batch <= 0 {
		cfg.Batch = DefaultBatch
	}
	for i := 0; i < len(events); i += cfg.Batch {
		end := i + cfg.Batch
		if end > len(events) {
			end = len(events)
		}
		c.Ingest(events[i:end])
	}
	return c.Finalize()
}

// Ingest processes one batch of events — one complete drain pass, in
// delivered order — advancing the retirement watermark and pruning the
// window every cfg.Batch events and at the pass boundary. The intra-
// pass strides keep the window bounded even when a starved pump thread
// delivers an enormous pass; a stride boundary is sound for the same
// reason a pass boundary is (the floor only counts CSNs published
// before events already delivered). It is the sink side of
// trace.Subscribe.
func (c *Checker) Ingest(events []trace.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range events {
		c.ingestOne(&events[i])
		c.sincePass++
		if c.sincePass >= c.cfg.Batch {
			c.endPass()
			c.sincePass = 0
		}
	}
	c.endPass()
	c.sincePass = 0
}

// Stats returns a snapshot of the live counters (the expvar surface).
func (c *Checker) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapshotLocked()
}

func (c *Checker) snapshotLocked() Stats {
	s := c.stats
	s.Pending = len(c.pending)
	s.Window = len(c.window)
	s.Watermark = c.watermark
	s.Violations = c.stats.SIViolations + c.cycles
	s.Cycles = c.cycles
	return s
}

// Finalize returns the verdict over everything ingested so far. The
// checker remains usable; Finalize is a snapshot, not a reset.
func (c *Checker) Finalize() *Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.snapshotLocked()
	rep := &Report{
		Txns:         int(c.stats.Commits),
		Serializable: c.cycles == 0,
		SIViolations: c.stats.SIViolations,
		Violations:   append([]Violation(nil), c.violations...),
		Stats:        st,
	}
	return rep
}

// ingestOne dispatches one event.
func (c *Checker) ingestOne(ev *trace.Event) {
	c.stats.Events++
	if int(ev.Kind) >= int(trace.NumKinds()) {
		c.stats.UnknownKind++
		return
	}
	switch ev.Kind {
	case trace.EvBegin, trace.EvSnapshot:
		if ev.Tx == 0 || c.inWindow(ev.Tx) {
			c.stats.Ignored++
			return
		}
		p := c.pendingFor(ev.Tx)
		if p.done {
			c.stats.Ignored++
			return
		}
		if !p.begun {
			c.stats.Begins++
		}
		p.begun = true
		p.start = ev.CSN
		c.noteCSN(ev.CSN)
	case trace.EvReadVer:
		if ev.Tx == 0 || c.inWindow(ev.Tx) {
			c.stats.Ignored++
			return
		}
		p := c.pendingFor(ev.Tx)
		if p.done {
			c.stats.Ignored++
			return
		}
		p.reads = append(p.reads, ref{item: itemKey{ev.Table, ev.Key}, csn: ev.CSN})
	case trace.EvWriteVer:
		if ev.Tx == 0 || c.inWindow(ev.Tx) {
			c.stats.Ignored++
			return
		}
		p := c.pendingFor(ev.Tx)
		if p.done {
			c.stats.Ignored++
			return
		}
		p.writes = append(p.writes, ref{item: itemKey{ev.Table, ev.Key}, csn: ev.CSN})
	case trace.EvAbort:
		if ev.Tx == 0 {
			c.stats.Ignored++
			return
		}
		if p, ok := c.pending[ev.Tx]; ok && !p.done {
			p.done = true
			c.stats.Aborts++
			delete(c.pending, ev.Tx)
		} else if _, inWin := c.window[ev.Tx]; inWin {
			c.stats.Ignored++ // terminal after commit: malformed
		} else {
			c.stats.Aborts++ // abort of a never-seen tx: nothing buffered
		}
	case trace.EvCommit:
		if ev.Tx == 0 {
			c.stats.Ignored++
			return
		}
		if _, dup := c.window[ev.Tx]; dup {
			c.stats.Ignored++
			return
		}
		p, ok := c.pending[ev.Tx]
		if !ok {
			p = c.pendingFor(ev.Tx)
		}
		if p.done {
			c.stats.Ignored++
			return
		}
		delete(c.pending, ev.Tx)
		c.noteCSN(ev.CSN)
		c.commit(p, ev.CSN)
	default:
		// Statement-start, lock, conflict and device events carry no
		// dependency information the version events do not already
		// carry exactly.
	}
}

// inWindow reports whether tx already committed into the window —
// further lifecycle events for it (duplicates, malformed streams) are
// ignored rather than allowed to open a phantom pending record that
// would pin the retirement watermark.
func (c *Checker) inWindow(tx uint64) bool {
	_, ok := c.window[tx]
	return ok
}

// pendingFor returns (creating if needed) the pending record for tx.
// A record created by a non-begin event marks a gap transaction: its
// snapshot is unknown, so effStart conservatively takes the current
// floor and the SI rules are skipped for it.
func (c *Checker) pendingFor(tx uint64) *pendingTx {
	p := c.pending[tx]
	if p == nil {
		p = &pendingTx{id: tx, effStart: c.floorPrev}
		c.pending[tx] = p
		if n := len(c.pending); n > c.stats.MaxPending {
			c.stats.MaxPending = n
		}
	}
	return p
}

// noteCSN observes a published CSN (begin snapshots and commit CSNs are
// published before their events are emitted, so they are safe floor
// evidence; write-ver CSNs are emitted pre-publication and are not).
func (c *Checker) noteCSN(csn uint64) {
	if csn > c.maxSeen {
		c.maxSeen = csn
	}
}

// commit integrates a terminating transaction into the window, derives
// its dependency edges, applies the SI rules, and checks for a cycle
// through it.
func (c *Checker) commit(p *pendingTx, commitCSN uint64) {
	c.stats.Commits++
	if !p.begun {
		c.stats.GapTxs++
	}
	n := &txNode{
		id:      p.id,
		start:   p.start,
		commit:  commitCSN,
		begun:   p.begun,
		writer:  len(p.writes) > 0,
		outSeen: make(map[uint64]uint8),
		reads:   p.reads,
		writes:  dedupeWrites(p.writes),
	}
	n.writes = n.writes[:len(n.writes):len(n.writes)]
	c.window[n.id] = n
	heap.Push(&c.byCSN, n)
	if w := len(c.window); w > c.stats.MaxWindow {
		c.stats.MaxWindow = w
	}

	siRules := c.cfg.SIRules && n.begun

	// Writes: install versions, derive WW and (from earlier committed
	// readers) RW/WR edges, and check the concurrent-writer rule.
	for _, w := range n.writes {
		it := c.itemFor(w.item)
		vs := it.versions
		idx := sort.Search(len(vs), func(i int) bool { return vs[i].csn >= w.csn })
		if idx < len(vs) && vs[idx].csn == w.csn {
			// Two committed versions sharing a CSN cannot come from a
			// real run; keep the first, drop this one.
			c.stats.Ignored++
			continue
		}
		if siRules {
			// Concurrent committed writers of one item violate SI's
			// First-Updater-Wins contract. Versions inside our
			// (start, commit) window committed while we ran; versions
			// after our commit violate iff their creator's snapshot
			// predates our commit (symmetric overlap, detected at the
			// later integration whichever event order delivered them).
			for i := idx - 1; i >= 0 && vs[i].csn > n.start; i-- {
				c.addViolation(Violation{
					Kind: LostUpdate, Txs: []uint64{vs[i].tx, n.id},
					Table: w.item.table, Key: w.item.key, CSN: vs[i].csn,
				})
			}
			for i := idx; i < len(vs); i++ {
				if u := c.window[vs[i].tx]; u != nil && u.begun && w.csn > u.start {
					c.addViolation(Violation{
						Kind: LostUpdate, Txs: []uint64{n.id, vs[i].tx},
						Table: w.item.table, Key: w.item.key, CSN: w.csn,
					})
				}
			}
		}
		lo := uint64(0)
		if idx > 0 {
			lo = vs[idx-1].csn
		}
		it.versions = append(vs, version{})
		copy(it.versions[idx+1:], it.versions[idx:])
		it.versions[idx] = version{csn: w.csn, tx: n.id}
		if idx > 0 {
			c.addEdge(it.versions[idx-1].tx, n.id, checker.WW, w.item)
		}
		if idx+1 < len(it.versions) {
			c.addEdge(n.id, it.versions[idx+1].tx, checker.WW, w.item)
		}
		// RW goes to exactly the readers whose first next version this
		// one becomes: reads in [predecessor, w.csn). Readers of even
		// older versions already hold an RW to a closer writer, and the
		// WW chain implies the rest — scanning them too would make a hot
		// item quadratic in the window. Readers AT w.csn saw this very
		// version before its writer integrated: WR.
		rs := it.readers
		i := sort.Search(len(rs), func(i int) bool { return rs[i].csn >= lo })
		for ; i < len(rs) && rs[i].csn < w.csn; i++ {
			c.addEdge(rs[i].tx, n.id, checker.RW, w.item)
		}
		for ; i < len(rs) && rs[i].csn == w.csn; i++ {
			c.addEdge(n.id, rs[i].tx, checker.WR, w.item)
		}
	}

	// Reads: WR from the creator of the version read, RW to the creator
	// of the next version, plus the SI read rules.
	for _, r := range n.reads {
		it := c.itemFor(r.item)
		if siRules {
			if r.csn > n.start {
				c.addViolation(Violation{
					Kind: FutureRead, Txs: []uint64{n.id},
					Table: r.item.table, Key: r.item.key, CSN: r.csn,
				})
			} else if stale, scsn := staleAgainst(it, r.csn, n.start); stale {
				c.addViolation(Violation{
					Kind: StaleRead, Txs: []uint64{n.id},
					Table: r.item.table, Key: r.item.key, CSN: scsn,
				})
			}
		}
		vs := it.versions
		idx := sort.Search(len(vs), func(i int) bool { return vs[i].csn >= r.csn })
		if idx < len(vs) && vs[idx].csn == r.csn {
			c.addEdge(vs[idx].tx, n.id, checker.WR, r.item)
			idx++
		}
		// Reads of versions created outside the traced window (the
		// loader, or retired history) have no source node; skipped,
		// exactly as the offline analyzer skips them.
		if idx < len(vs) {
			c.addEdge(n.id, vs[idx].tx, checker.RW, r.item)
		}
		// Keep readers sorted by read CSN so writers can range-scan the
		// predecessor interval above.
		rs2 := it.readers
		pos := sort.Search(len(rs2), func(i int) bool { return rs2[i].csn > r.csn })
		it.readers = append(rs2, readerRec{})
		copy(it.readers[pos+1:], it.readers[pos:])
		it.readers[pos] = readerRec{csn: r.csn, tx: n.id}
	}

	c.checkCycle(n)
}

// staleAgainst reports whether a read of version r violates the
// snapshot rule: some version v with r < v.csn <= start exists (the
// snapshot contained v, so reading r is stale). Pruned versions are
// covered by prunedMax.
func staleAgainst(it *itemState, r, start uint64) (bool, uint64) {
	vs := it.versions
	idx := sort.Search(len(vs), func(i int) bool { return vs[i].csn > r })
	if idx < len(vs) && vs[idx].csn <= start {
		return true, vs[idx].csn
	}
	if r < it.prunedMax && it.prunedMax <= start {
		return true, it.prunedMax
	}
	return false, 0
}

// dedupeWrites drops repeated writes of the same item (one committed
// version per item per transaction; duplicates only occur in malformed
// streams).
func dedupeWrites(ws []ref) []ref {
	if len(ws) < 2 {
		return ws
	}
	seen := make(map[itemKey]bool, len(ws))
	out := ws[:0]
	for _, w := range ws {
		if !seen[w.item] {
			seen[w.item] = true
			out = append(out, w)
		}
	}
	return out
}

// itemFor returns (creating if needed) the index entry for an item.
func (c *Checker) itemFor(k itemKey) *itemState {
	it := c.items[k]
	if it == nil {
		it = &itemState{}
		c.items[k] = it
	}
	return it
}

// edge-kind bits for outSeen dedup.
func kindBit(k checker.DepKind) uint8 { return 1 << uint8(k) }

// addEdge records from→to if both ends are live and the (to, kind)
// pair is new for from. Self-edges are not dependencies.
func (c *Checker) addEdge(from, to uint64, kind checker.DepKind, item itemKey) {
	if from == to {
		return
	}
	fn := c.window[from]
	if fn == nil || c.window[to] == nil {
		return
	}
	if fn.outSeen[to]&kindBit(kind) != 0 {
		return
	}
	fn.outSeen[to] |= kindBit(kind)
	fn.out = append(fn.out, edge{to: to, kind: kind, item: item})
	c.stats.Edges++
}

// checkCycle searches for a dependency path from n back to n. Every
// edge added by n's integration is incident on n, so any cycle the
// commit closed passes through n; one DFS bounded by the window size
// decides it.
func (c *Checker) checkCycle(n *txNode) {
	type frame struct {
		node *txNode
		ei   int
	}
	visited := map[uint64]bool{n.id: true}
	var stack []frame
	var path []edge
	stack = append(stack, frame{node: n})
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.ei >= len(f.node.out) {
			stack = stack[:len(stack)-1]
			if len(path) > 0 {
				path = path[:len(path)-1]
			}
			continue
		}
		e := f.node.out[f.ei]
		f.ei++
		if e.to == n.id {
			path = append(path, e)
			c.reportCycle(n, path)
			return
		}
		next := c.window[e.to]
		if next == nil || visited[e.to] {
			continue
		}
		visited[e.to] = true
		path = append(path, e)
		stack = append(stack, frame{node: next})
	}
}

// reportCycle converts a closing path (n → ... → n) into a Violation.
func (c *Checker) reportCycle(n *txNode, path []edge) {
	c.cycles++
	txs := make([]uint64, 0, len(path)+1)
	deps := make([]checker.Dep, 0, len(path))
	from := n.id
	writers := make(map[uint64]bool)
	writers[n.id] = n.writer
	for _, e := range path {
		deps = append(deps, checker.Dep{
			From: from, To: e.to, Kind: e.kind, Table: e.item.table, Key: e.item.key,
		})
		txs = append(txs, from)
		if nn := c.window[e.to]; nn != nil {
			writers[e.to] = nn.writer
		}
		from = e.to
	}
	txs = append(txs, from)
	v := Violation{
		Kind:    Cycle,
		Anomaly: checker.ClassifyCycle(txs, deps, writers),
		Txs:     txs,
		Edges:   deps,
	}
	c.retainViolation(v)
}

// addViolation records an SI-rule violation.
func (c *Checker) addViolation(v Violation) {
	c.stats.SIViolations++
	c.retainViolation(v)
}

// retainViolation stamps window bounds and keeps the record if under
// the retention cap.
func (c *Checker) retainViolation(v Violation) {
	v.Window = WindowBounds{Size: len(c.window), NewestCSN: c.maxSeen, Watermark: c.watermark}
	if len(c.byCSN) > 0 {
		v.Window.OldestCSN = c.byCSN[0].commit
	}
	if len(c.violations) < c.cfg.MaxViolations {
		c.violations = append(c.violations, v)
	}
}

// endPass advances the retirement watermark and prunes the window: a
// committed transaction whose commit CSN is at or below the watermark
// can never gain another in-edge (every unseen transaction's snapshot
// is at least floorPrev; every known in-flight transaction's snapshot
// bounds the minimum directly), so it is removed from every index.
func (c *Checker) endPass() {
	wm := c.floorPrev
	for _, p := range c.pending {
		s := p.start
		if !p.begun {
			s = p.effStart
		}
		if s < wm {
			wm = s
		}
	}
	if wm > c.watermark {
		c.watermark = wm
	}
	for len(c.byCSN) > 0 && c.byCSN[0].commit <= c.watermark {
		c.retire(heap.Pop(&c.byCSN).(*txNode))
	}
	c.floorPrev = c.maxSeen
}

// retire removes one committed transaction from the window and its
// entries from the per-item indexes.
func (c *Checker) retire(n *txNode) {
	delete(c.window, n.id)
	c.stats.Retired++
	for _, w := range n.writes {
		it := c.items[w.item]
		if it == nil {
			continue
		}
		vs := it.versions
		idx := sort.Search(len(vs), func(i int) bool { return vs[i].csn >= w.csn })
		if idx < len(vs) && vs[idx].csn == w.csn && vs[idx].tx == n.id {
			it.versions = append(vs[:idx], vs[idx+1:]...)
			if w.csn > it.prunedMax {
				it.prunedMax = w.csn
			}
		}
		c.dropItemIfEmpty(w.item, it)
	}
	for _, r := range n.reads {
		it := c.items[r.item]
		if it == nil {
			continue
		}
		for i := len(it.readers) - 1; i >= 0; i-- {
			if it.readers[i].tx == n.id {
				it.readers = append(it.readers[:i], it.readers[i+1:]...)
			}
		}
		c.dropItemIfEmpty(r.item, it)
	}
}

// dropItemIfEmpty frees an item entry once nothing references it and
// no pruned-version watermark must be remembered... except the
// watermark must be remembered as long as SI rules are on, so entries
// with prunedMax persist (bounded by the key space, like the database
// itself).
func (c *Checker) dropItemIfEmpty(k itemKey, it *itemState) {
	if len(it.versions) == 0 && len(it.readers) == 0 && it.prunedMax == 0 {
		delete(c.items, k)
	}
}

package onlinecheck_test

import (
	"fmt"
	"testing"

	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/onlinecheck"
	"sicost/internal/trace"
)

// benchCommitCheck measures the engine's commit cycle (begin, read,
// update, commit — the same cycle BenchmarkCommitTraced in
// internal/engine times) in three instrumentation states: no recorder
// ("off"), recorder capturing ("traced" — the price already paid for
// tracing), and recorder capturing with the online checker verifying
// the drained stream ("checked"). Both traced and checked consume the
// rings outside the timer, so traced→checked isolates the checker's
// commit-path footprint: emission is identical, and the measured delta
// must stay within the 5% budget. The checker's own off-path cost is
// priced separately, per event, by BenchmarkIngest — an asynchronous
// subscription (onlinecheck.Attach) spends exactly that on another
// core, where this single-threaded loop cannot see it honestly: timing
// the pump inline would bill wall-clock time-sharing, not commit
// latency, and at full tilt the loop overruns the rings, whose dropped
// commits then pin the watermark forever.
func benchCommitCheck(b *testing.B, mode string) {
	const rows = 1024
	var rec *trace.Recorder
	if mode != "off" {
		rec = trace.New(trace.Options{})
	}
	db := engine.Open(engine.Config{Mode: core.SnapshotFUW, Platform: core.PlatformPostgres, Tracer: rec})
	b.Cleanup(db.Close)
	schema := &core.Schema{
		Name: "T",
		Columns: []core.Column{
			{Name: "K", Kind: core.KindInt, NotNull: true},
			{Name: "V", Kind: core.KindInt, NotNull: true},
		},
		PK: 0,
	}
	if err := db.CreateTable(schema); err != nil {
		b.Fatal(err)
	}
	seed := db.Begin()
	for k := int64(0); k < rows; k++ {
		if err := seed.Insert("T", core.Record{core.Int(k), core.Int(k)}); err != nil {
			b.Fatal(err)
		}
	}
	if err := seed.Commit(); err != nil {
		b.Fatal(err)
	}

	var chk *onlinecheck.Checker
	if mode == "checked" {
		chk = onlinecheck.New(onlinecheck.Config{SIRules: true})
		chk.Ingest(rec.Drain()) // the seed transaction starts the stream
	} else if rec != nil {
		rec.Drain()
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := int64(i) % rows
		tx := db.Begin()
		if _, err := tx.Get("T", core.Int(k)); err != nil {
			b.Fatal(err)
		}
		wk := (k + 1) % rows
		if err := tx.Update("T", core.Int(wk), core.Record{core.Int(wk), core.Int(int64(i))}); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
		if mode != "off" && i%4096 == 0 {
			// Drain outside the timer, exactly as BenchmarkCommitTraced
			// does; the checked case also replays the batch through the
			// checker here, keeping the rings from overrunning while the
			// timed region prices only the commit path.
			b.StopTimer()
			if chk != nil {
				chk.Ingest(rec.Drain())
			} else {
				rec.Drain()
			}
			b.StartTimer()
		}
	}
	b.StopTimer()
	if mode == "checked" {
		chk.Ingest(rec.Drain())
		chk.Ingest(nil) // settle: nothing in flight, the window retires
		rep := chk.Finalize()
		if !rep.Serializable || rep.SIViolations != 0 {
			b.Fatalf("sequential bench flagged: %s", rep.Describe())
		}
		if rep.Stats.MaxWindow > 4096 {
			b.Fatalf("window grew like history under the bench: peak %d", rep.Stats.MaxWindow)
		}
		if rep.Stats.Pending != 0 || rep.Stats.GapTxs != 0 {
			b.Fatalf("stream incomplete after settle: %+v", rep.Stats)
		}
	}
}

// BenchmarkOnlineCheck compares the serial commit cycle with no
// recorder, with tracing capturing, and with the online checker
// verifying the stream live.
func BenchmarkOnlineCheck(b *testing.B) {
	for _, mode := range []string{"off", "traced", "checked"} {
		b.Run(mode, func(b *testing.B) { benchCommitCheck(b, mode) })
	}
}

// BenchmarkIngest prices the checker alone: a pre-recorded sequential
// commit stream replayed through Ingest, reported per event. This is
// the number to reason about when sizing Config.Batch — the window
// discipline runs every Batch events.
func BenchmarkIngest(b *testing.B) {
	const txs = 4096
	var evs []trace.Event
	ts := int64(0)
	emit := func(kind trace.Kind, tx, csn uint64, key string) {
		ts++
		ev := trace.Event{TS: ts, Kind: kind, Tx: tx, CSN: csn}
		if key != "" {
			ev.Table = "T"
			ev.Key = core.Str(key)
		}
		evs = append(evs, ev)
	}
	for i := 1; i <= txs; i++ {
		tx := uint64(i)
		key := fmt.Sprintf("k%d", i%64)
		emit(trace.EvBegin, tx, uint64(i-1), "")
		if i > 64 {
			emit(trace.EvReadVer, tx, uint64(i-64), key)
		}
		emit(trace.EvWriteVer, tx, uint64(i), key)
		emit(trace.EvCommit, tx, uint64(i), "")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := onlinecheck.Run(evs, onlinecheck.Config{SIRules: true})
		if !rep.Serializable {
			b.Fatal("bench stream flagged")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(evs)), "ns/event")
}

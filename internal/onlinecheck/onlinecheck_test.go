package onlinecheck_test

import (
	"testing"

	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/onlinecheck"
	"sicost/internal/trace"
)

// ev builds one synthetic lifecycle event (the tests feed hand-crafted
// streams; table "H" matches the histories fixtures).
func ev(kind trace.Kind, tx uint64, key string, csn uint64) trace.Event {
	e := trace.Event{Kind: kind, Tx: tx, CSN: csn}
	if key != "" {
		e.Table = "H"
		e.Key = core.Str(key)
	}
	return e
}

// TestWriteSkewCycle feeds the canonical write-skew stream — two
// transactions on one snapshot, disjoint writes over a shared read set —
// and expects exactly one cycle, classified.
func TestWriteSkewCycle(t *testing.T) {
	stream := []trace.Event{
		ev(trace.EvBegin, 1, "", 10),
		ev(trace.EvBegin, 2, "", 10),
		ev(trace.EvReadVer, 1, "x", 5),
		ev(trace.EvReadVer, 1, "y", 5),
		ev(trace.EvReadVer, 2, "x", 5),
		ev(trace.EvReadVer, 2, "y", 5),
		ev(trace.EvWriteVer, 1, "x", 11),
		ev(trace.EvCommit, 1, "", 11),
		ev(trace.EvWriteVer, 2, "y", 12),
		ev(trace.EvCommit, 2, "", 12),
	}
	rep := onlinecheck.Run(stream, onlinecheck.Config{SIRules: true})
	if rep.Serializable {
		t.Fatal("write skew not detected")
	}
	if rep.Stats.Cycles != 1 || rep.SIViolations != 0 {
		t.Fatalf("want 1 cycle, 0 SI violations; got %d / %d", rep.Stats.Cycles, rep.SIViolations)
	}
	v := rep.Violations[0]
	if v.Kind != onlinecheck.Cycle || v.Anomaly != "write skew" {
		t.Fatalf("violation = %s, want write-skew cycle", v)
	}
	if len(v.Txs) != 3 || v.Txs[0] != v.Txs[len(v.Txs)-1] {
		t.Fatalf("cycle txs not closed: %v", v.Txs)
	}
	if len(v.Edges) != 2 {
		t.Fatalf("write skew should have a 2-edge witness, got %v", v.Edges)
	}
}

// TestSerialChainRetires runs three sequential read-modify-write
// transactions in three drain passes and checks the window actually
// retires: memory is O(window), not O(history).
func TestSerialChainRetires(t *testing.T) {
	c := onlinecheck.New(onlinecheck.Config{SIRules: true})
	c.Ingest([]trace.Event{
		ev(trace.EvBegin, 1, "", 0),
		ev(trace.EvWriteVer, 1, "x", 1),
		ev(trace.EvCommit, 1, "", 1),
	})
	c.Ingest([]trace.Event{
		ev(trace.EvBegin, 2, "", 1),
		ev(trace.EvReadVer, 2, "x", 1),
		ev(trace.EvWriteVer, 2, "x", 2),
		ev(trace.EvCommit, 2, "", 2),
	})
	c.Ingest([]trace.Event{
		ev(trace.EvBegin, 3, "", 2),
		ev(trace.EvReadVer, 3, "x", 2),
		ev(trace.EvWriteVer, 3, "x", 3),
		ev(trace.EvCommit, 3, "", 3),
	})
	rep := c.Finalize()
	if !rep.Serializable || rep.SIViolations != 0 {
		t.Fatalf("serial chain flagged: %s", rep.Describe())
	}
	if rep.Stats.Retired != 2 {
		t.Fatalf("retired = %d, want 2 (only the newest commit may be unretirable)", rep.Stats.Retired)
	}
	if rep.Stats.MaxWindow > 2 {
		t.Fatalf("window peaked at %d; sequential traffic must stay <= 2", rep.Stats.MaxWindow)
	}
	// WR+WW per handoff (two handoffs); like the offline analyzer, the
	// online checker stores only reader→first-next-writer
	// antidependencies (t2's first next writer after version 1 is t2
	// itself — self-edges are skipped), so a hot item stays linear in
	// the window rather than quadratic.
	if rep.Stats.Edges != 4 {
		t.Fatalf("edges = %d, want 4", rep.Stats.Edges)
	}
}

// TestLostUpdate checks the First-Updater-Wins rule: two concurrent
// committed writers of one item are an SI violation (though the history
// is WW-serializable, so the verdict stays serializable).
func TestLostUpdate(t *testing.T) {
	stream := []trace.Event{
		ev(trace.EvBegin, 1, "", 1),
		ev(trace.EvBegin, 2, "", 1),
		ev(trace.EvWriteVer, 1, "x", 2),
		ev(trace.EvCommit, 1, "", 2),
		ev(trace.EvWriteVer, 2, "x", 3),
		ev(trace.EvCommit, 2, "", 3),
	}
	rep := onlinecheck.Run(stream, onlinecheck.Config{SIRules: true})
	if !rep.Serializable {
		t.Fatalf("blind WW overwrite is serializable: %s", rep.Describe())
	}
	if rep.SIViolations != 1 || rep.Violations[0].Kind != onlinecheck.LostUpdate {
		t.Fatalf("want one lost-update violation, got %s", rep.Describe())
	}
	v := rep.Violations[0]
	if v.CSN != 2 || len(v.Txs) != 2 {
		t.Fatalf("lost-update provenance wrong: %s", v)
	}
	// The same stream under 2PL semantics (SIRules off) is clean.
	if rep := onlinecheck.Run(stream, onlinecheck.Config{}); rep.SIViolations != 0 {
		t.Fatalf("SIRules off must not flag: %s", rep.Describe())
	}
}

// TestStaleRead: a transaction whose snapshot contains version 2 of x
// read version 1 — the snapshot rule is broken even though nothing
// cycles.
func TestStaleRead(t *testing.T) {
	stream := []trace.Event{
		ev(trace.EvBegin, 1, "", 0),
		ev(trace.EvWriteVer, 1, "x", 1),
		ev(trace.EvCommit, 1, "", 1),
		ev(trace.EvBegin, 2, "", 1),
		ev(trace.EvWriteVer, 2, "x", 2),
		ev(trace.EvCommit, 2, "", 2),
		ev(trace.EvBegin, 3, "", 3),
		ev(trace.EvReadVer, 3, "x", 1),
		ev(trace.EvCommit, 3, "", 3),
	}
	rep := onlinecheck.Run(stream, onlinecheck.Config{SIRules: true})
	var stale int
	for _, v := range rep.Violations {
		if v.Kind == onlinecheck.StaleRead {
			stale++
			if v.CSN != 2 {
				t.Fatalf("stale-read witness CSN = %d, want 2 (the version the snapshot should have seen)", v.CSN)
			}
		}
	}
	if stale != 1 {
		t.Fatalf("want exactly one stale read, got %s", rep.Describe())
	}
}

// TestFutureRead: reading a version newer than the snapshot violates SI
// but is legitimate under 2PL (SIRules off).
func TestFutureRead(t *testing.T) {
	stream := []trace.Event{
		ev(trace.EvBegin, 1, "", 0),
		ev(trace.EvWriteVer, 1, "x", 2),
		ev(trace.EvCommit, 1, "", 2),
		ev(trace.EvBegin, 2, "", 1),
		ev(trace.EvReadVer, 2, "x", 2),
		ev(trace.EvCommit, 2, "", 2),
	}
	rep := onlinecheck.Run(stream, onlinecheck.Config{SIRules: true})
	if rep.SIViolations != 1 || rep.Violations[0].Kind != onlinecheck.FutureRead {
		t.Fatalf("want one future-read violation, got %s", rep.Describe())
	}
	if rep := onlinecheck.Run(stream, onlinecheck.Config{}); rep.SIViolations != 0 {
		t.Fatalf("future read must be fine without SI rules: %s", rep.Describe())
	}
}

// TestAbortDiscards: aborted transactions leave nothing behind — no
// versions, no readers, no edges.
func TestAbortDiscards(t *testing.T) {
	stream := []trace.Event{
		ev(trace.EvBegin, 1, "", 5),
		ev(trace.EvReadVer, 1, "x", 3),
		ev(trace.EvAbort, 1, "", 0),
		ev(trace.EvBegin, 2, "", 5),
		ev(trace.EvWriteVer, 2, "x", 6),
		ev(trace.EvCommit, 2, "", 6),
	}
	rep := onlinecheck.Run(stream, onlinecheck.Config{SIRules: true})
	if !rep.Serializable || rep.SIViolations != 0 {
		t.Fatalf("abort leaked state: %s", rep.Describe())
	}
	if rep.Stats.Aborts != 1 || rep.Stats.Commits != 1 || rep.Stats.Edges != 0 {
		t.Fatalf("aborts=%d commits=%d edges=%d, want 1/1/0",
			rep.Stats.Aborts, rep.Stats.Commits, rep.Stats.Edges)
	}
}

// TestGapCommitSkipsSIRules: a commit whose begin was lost (ring
// overflow) still integrates for cycle checking, but the SI rules —
// which need the snapshot point — are skipped rather than risk a false
// alarm.
func TestGapCommitSkipsSIRules(t *testing.T) {
	stream := []trace.Event{
		ev(trace.EvReadVer, 1, "x", 99), // would be a future read if begun
		ev(trace.EvWriteVer, 1, "x", 5),
		ev(trace.EvCommit, 1, "", 5),
	}
	rep := onlinecheck.Run(stream, onlinecheck.Config{SIRules: true})
	if rep.Stats.GapTxs != 1 {
		t.Fatalf("GapTxs = %d, want 1", rep.Stats.GapTxs)
	}
	if rep.SIViolations != 0 || !rep.Serializable {
		t.Fatalf("gap transaction must not produce verdicts: %s", rep.Describe())
	}
}

// TestMalformedStream: duplicate terminals, post-commit traffic, version
// collisions and unknown kinds are counted and ignored, never panic.
func TestMalformedStream(t *testing.T) {
	stream := []trace.Event{
		ev(trace.EvBegin, 1, "", 0),
		ev(trace.EvWriteVer, 1, "x", 1),
		ev(trace.EvCommit, 1, "", 1),
		ev(trace.EvCommit, 1, "", 7),   // duplicate commit
		ev(trace.EvBegin, 1, "", 0),    // begin after commit
		ev(trace.EvAbort, 1, "", 0),    // terminal after commit
		ev(trace.Kind(200), 2, "x", 3), // unknown kind
		ev(trace.EvBegin, 2, "", 1),
		ev(trace.EvWriteVer, 2, "x", 1), // collides with tx 1's version
		ev(trace.EvCommit, 2, "", 9),
	}
	rep := onlinecheck.Run(stream, onlinecheck.Config{SIRules: true})
	if rep.Stats.UnknownKind != 1 {
		t.Fatalf("UnknownKind = %d, want 1", rep.Stats.UnknownKind)
	}
	if rep.Stats.Ignored < 4 {
		t.Fatalf("Ignored = %d, want >= 4 (dup commit, late begin, late abort, csn collision)", rep.Stats.Ignored)
	}
	if rep.Stats.Commits != 2 {
		t.Fatalf("Commits = %d, want 2", rep.Stats.Commits)
	}
}

// TestRunChunkedWindowBound replays a long sequential history with a
// small batch size and checks the window stays bounded while the
// verdict stays exact.
func TestRunChunkedWindowBound(t *testing.T) {
	const n = 200
	var stream []trace.Event
	for i := uint64(1); i <= n; i++ {
		stream = append(stream, ev(trace.EvBegin, i, "", i-1))
		if i > 1 {
			stream = append(stream, ev(trace.EvReadVer, i, "x", i-1))
		}
		stream = append(stream, ev(trace.EvWriteVer, i, "x", i))
		stream = append(stream, ev(trace.EvCommit, i, "", i))
	}
	rep := onlinecheck.Run(stream, onlinecheck.Config{SIRules: true, Batch: 16})
	if !rep.Serializable || rep.SIViolations != 0 {
		t.Fatalf("sequential history flagged: %s", rep.Describe())
	}
	if rep.Txns != n {
		t.Fatalf("integrated %d txns, want %d", rep.Txns, n)
	}
	if rep.Stats.MaxWindow > 24 {
		t.Fatalf("window peaked at %d on sequential traffic with batch 16", rep.Stats.MaxWindow)
	}
	if rep.Stats.Retired < n-24 {
		t.Fatalf("retired only %d of %d", rep.Stats.Retired, n)
	}
}

// TestDeterminism: the same stream always yields the identical report.
func TestDeterminism(t *testing.T) {
	stream := []trace.Event{
		ev(trace.EvBegin, 1, "", 10),
		ev(trace.EvBegin, 2, "", 10),
		ev(trace.EvReadVer, 1, "y", 5),
		ev(trace.EvReadVer, 2, "x", 5),
		ev(trace.EvWriteVer, 1, "x", 11),
		ev(trace.EvCommit, 1, "", 11),
		ev(trace.EvWriteVer, 2, "y", 12),
		ev(trace.EvCommit, 2, "", 12),
	}
	a := onlinecheck.Run(stream, onlinecheck.Config{SIRules: true}).Describe()
	b := onlinecheck.Run(stream, onlinecheck.Config{SIRules: true}).Describe()
	if a != b {
		t.Fatalf("nondeterministic reports:\n%s\nvs\n%s", a, b)
	}
	if a == "" {
		t.Fatal("empty report")
	}
}

// TestViolationRetentionCap: the structured list is capped, the
// counters are not.
func TestViolationRetentionCap(t *testing.T) {
	var stream []trace.Event
	// Ten concurrent committed writers of one item: every later one
	// conflicts with every earlier one.
	for i := uint64(1); i <= 10; i++ {
		stream = append(stream, ev(trace.EvBegin, i, "", 0))
	}
	for i := uint64(1); i <= 10; i++ {
		stream = append(stream,
			ev(trace.EvWriteVer, i, "x", i),
			ev(trace.EvCommit, i, "", i))
	}
	rep := onlinecheck.Run(stream, onlinecheck.Config{SIRules: true, MaxViolations: 3})
	if len(rep.Violations) != 3 {
		t.Fatalf("retained %d violations, cap is 3", len(rep.Violations))
	}
	if rep.SIViolations != 45 { // C(10,2) pairs all conflict
		t.Fatalf("SIViolations = %d, want 45", rep.SIViolations)
	}
}

// TestLiveSubscription wires the checker to a real engine through the
// recorder and subscription: sequential transfers must come out
// serializable with the window retired behind the watermark.
func TestLiveSubscription(t *testing.T) {
	db := engine.Open(engine.Config{Mode: core.SnapshotFUW})
	defer db.Close()
	schema := &core.Schema{
		Name: "acct",
		Columns: []core.Column{
			{Name: "K", Kind: core.KindString, NotNull: true},
			{Name: "V", Kind: core.KindInt, NotNull: true},
		},
		PK: 0,
	}
	if err := db.CreateTable(schema); err != nil {
		t.Fatal(err)
	}
	seed := db.Begin()
	for _, k := range []string{"a", "b"} {
		if err := seed.Insert("acct", core.Record{core.Str(k), core.Int(100)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	rec := trace.New(trace.Options{Shards: 1, ShardCap: 1 << 12})
	db.SetTracer(rec)
	chk, sub := onlinecheck.Attach(rec, onlinecheck.Config{SIRules: true}, trace.SubOptions{})

	for i := 0; i < 50; i++ {
		tx := db.Begin()
		ra, err := tx.Get("acct", core.Str("a"))
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Update("acct", core.Str("a"), core.Record{core.Str("a"), core.Int(ra[1].Int64() - 1)}); err != nil {
			t.Fatal(err)
		}
		rb, err := tx.Get("acct", core.Str("b"))
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Update("acct", core.Str("b"), core.Record{core.Str("b"), core.Int(rb[1].Int64() + 1)}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		// Force a pass boundary every few transactions so retirement has
		// floors to advance through.
		if i%5 == 4 {
			sub.Flush()
		}
	}
	sub.Close()
	rep := chk.Finalize()
	if !rep.Serializable || rep.SIViolations != 0 {
		t.Fatalf("sequential transfers flagged: %s", rep.Describe())
	}
	if rep.Txns != 50 {
		t.Fatalf("checked %d transactions, want 50", rep.Txns)
	}
	if rep.Stats.Retired == 0 {
		t.Fatal("window never retired across pass boundaries")
	}
	if rep.Stats.MaxWindow >= 50 {
		t.Fatalf("window grew like history: peak %d", rep.Stats.MaxWindow)
	}
	if rec.Dropped() != 0 {
		t.Fatalf("recorder dropped %d events", rec.Dropped())
	}
}

// TestStatsSnapshot: Stats is usable mid-stream (the expvar surface).
func TestStatsSnapshot(t *testing.T) {
	c := onlinecheck.New(onlinecheck.Config{SIRules: true})
	c.Ingest([]trace.Event{
		ev(trace.EvBegin, 1, "", 0),
		ev(trace.EvReadVer, 1, "x", 0),
	})
	s := c.Stats()
	if s.Pending != 1 || s.Window != 0 || s.Events != 2 {
		t.Fatalf("mid-stream stats wrong: %+v", s)
	}
	c.Ingest([]trace.Event{ev(trace.EvCommit, 1, "", 1)})
	if s := c.Stats(); s.Pending != 0 || s.Window != 1 {
		t.Fatalf("post-commit stats wrong: %+v", s)
	}
}

package simres

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestNopMachineIsFree(t *testing.T) {
	m := Nop()
	start := time.Now()
	m.UseCPU(time.Second) // must not actually spin
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("nop machine burned CPU")
	}
	if m.TxnCost(10) != 0 {
		t.Fatalf("nop TxnCost = %v, want 0", m.TxnCost(10))
	}
	if m.CPUBusy() != 0 {
		t.Fatal("nop machine accounted CPU time")
	}
}

func TestSessionTracking(t *testing.T) {
	m := Nop()
	m.EnterSession()
	m.EnterSession()
	if m.ActiveSessions() != 2 {
		t.Fatalf("ActiveSessions = %d, want 2", m.ActiveSessions())
	}
	m.LeaveSession()
	if m.ActiveSessions() != 1 {
		t.Fatalf("ActiveSessions = %d, want 1", m.ActiveSessions())
	}
}

func TestTxnCostStatements(t *testing.T) {
	m := New(Config{VirtualCPUs: 1, TxnCPU: 100 * time.Microsecond, StmtCPU: 10 * time.Microsecond})
	if got := m.TxnCost(5); got != 150*time.Microsecond {
		t.Fatalf("TxnCost(5) = %v, want 150µs", got)
	}
	if got := m.TxnCost(0); got != 100*time.Microsecond {
		t.Fatalf("TxnCost(0) = %v, want 100µs", got)
	}
}

func TestSessionOverheadKnee(t *testing.T) {
	m := New(Config{
		VirtualCPUs: 1, TxnCPU: 100 * time.Microsecond,
		SessionKnee: 2, SessionOverhead: 10 * time.Microsecond,
	})
	for i := 0; i < 2; i++ {
		m.EnterSession()
	}
	if got := m.TxnCost(0); got != 100*time.Microsecond {
		t.Fatalf("at the knee TxnCost = %v, want no overhead", got)
	}
	for i := 0; i < 3; i++ {
		m.EnterSession()
	}
	// 5 sessions, knee 2 => 3 sessions over => +30µs.
	if got := m.TxnCost(0); got != 130*time.Microsecond {
		t.Fatalf("over the knee TxnCost = %v, want 130µs", got)
	}
}

func TestUseCPUTakesTime(t *testing.T) {
	m := New(Config{VirtualCPUs: 1, TxnCPU: time.Millisecond})
	start := time.Now()
	m.UseCPU(2 * time.Millisecond)
	if el := time.Since(start); el < 2*time.Millisecond {
		t.Fatalf("UseCPU(2ms) returned after %v", el)
	}
	if m.CPUBusy() != 2*time.Millisecond {
		t.Fatalf("CPUBusy = %v, want 2ms", m.CPUBusy())
	}
}

func TestCPUSaturationSerializes(t *testing.T) {
	// One virtual CPU, 4 goroutines each wanting 5ms: total wall time
	// must be at least 20ms because the slot serializes them.
	m := New(Config{VirtualCPUs: 1, TxnCPU: time.Millisecond})
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.UseCPU(5 * time.Millisecond)
		}()
	}
	wg.Wait()
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Fatalf("4x5ms on one virtual CPU finished in %v; pool not serializing", el)
	}
}

func TestTwoVirtualCPUsOverlap(t *testing.T) {
	if runtime.NumCPU() < 2 {
		t.Skip("needs two real cores: virtual CPUs busy-spin")
	}
	m := New(Config{VirtualCPUs: 2, TxnCPU: time.Millisecond})
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.UseCPU(10 * time.Millisecond)
		}()
	}
	wg.Wait()
	// Two slots: both should run concurrently, well under the serial 20ms.
	if el := time.Since(start); el > 18*time.Millisecond {
		t.Fatalf("2x10ms on two virtual CPUs took %v; expected overlap", el)
	}
}

func TestScaled(t *testing.T) {
	c := Config{
		VirtualCPUs: 1, TxnCPU: 100 * time.Microsecond,
		StmtCPU: 10 * time.Microsecond, SessionOverhead: 20 * time.Microsecond,
	}.Scaled(2)
	if c.TxnCPU != 200*time.Microsecond || c.StmtCPU != 20*time.Microsecond || c.SessionOverhead != 40*time.Microsecond {
		t.Fatalf("Scaled(2) = %+v", c)
	}
	if c.VirtualCPUs != 1 {
		t.Fatal("Scaled must not change CPU count")
	}
}

// Package simres models the server hardware of the paper's testbed as an
// explicit, tunable resource: a pool of virtual CPUs on which transactions
// spend a configurable service time, plus (for the commercial platform) a
// per-active-session overhead that reproduces the peak-then-decline
// throughput shape of §IV-F.
//
// The paper's absolute throughput numbers come from a 3.0 GHz Pentium IV
// and IDE disks; we do not try to match them. What matters for the
// reproduction is the *structure* of the costs: CPU saturation sets the
// plateau, log fsyncs (package wal) set the low-MPL updater cost, and
// session overhead bends the commercial platform's curve back down after
// its knee. All three are explicit knobs here.
package simres

import (
	"sync/atomic"
	"time"
)

// Config parameterizes the simulated machine. The zero value disables the
// model entirely (no CPU charging), which is what pure engine unit tests
// want.
type Config struct {
	// VirtualCPUs is the width of the CPU pool. The paper's server is a
	// single-core Pentium IV, so experiments default to 1.
	VirtualCPUs int
	// TxnCPU is the base CPU service time consumed by one transaction
	// attempt (parse/plan/execute of the stored procedure, network fold).
	TxnCPU time.Duration
	// StmtCPU is the additional CPU consumed per statement executed; the
	// program-modification strategies add statements and therefore CPU.
	StmtCPU time.Duration
	// UpdaterCommitCPU is the extra CPU an updating transaction spends
	// at commit (log-record construction, redo generation). Strategies
	// that turn read-only programs into updaters pay it on every
	// formerly-free transaction.
	UpdaterCommitCPU time.Duration
	// SessionKnee is the number of concurrently active sessions beyond
	// which each additional session adds overhead to every transaction
	// (commercial platform only; 0 disables).
	SessionKnee int
	// SessionOverhead is the extra CPU per transaction per active session
	// beyond the knee.
	SessionOverhead time.Duration
}

// Scaled returns a copy of the config with every duration multiplied by
// f. The experiment harness uses it to trade fidelity for wall-clock time.
func (c Config) Scaled(f float64) Config {
	scale := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) * f)
	}
	c.TxnCPU = scale(c.TxnCPU)
	c.StmtCPU = scale(c.StmtCPU)
	c.UpdaterCommitCPU = scale(c.UpdaterCommitCPU)
	c.SessionOverhead = scale(c.SessionOverhead)
	return c
}

// Machine is the shared simulated hardware of one database instance.
// All methods are safe for concurrent use.
type Machine struct {
	cfg      Config
	cpuSlots chan struct{} // nil when the model is disabled
	sessions atomic.Int64
	cpuBusy  atomic.Int64 // total nanoseconds of CPU time charged
}

// New builds a Machine from a config. A zero config yields a no-op
// machine: UseCPU returns immediately and sessions are tracked but free.
func New(cfg Config) *Machine {
	m := &Machine{cfg: cfg}
	if cfg.VirtualCPUs > 0 && (cfg.TxnCPU > 0 || cfg.StmtCPU > 0 || cfg.UpdaterCommitCPU > 0 || cfg.SessionOverhead > 0) {
		m.cpuSlots = make(chan struct{}, cfg.VirtualCPUs)
		for i := 0; i < cfg.VirtualCPUs; i++ {
			m.cpuSlots <- struct{}{}
		}
	}
	return m
}

// Nop returns a machine with the resource model disabled.
func Nop() *Machine { return New(Config{}) }

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// EnterSession registers one client session (a workload driver thread).
func (m *Machine) EnterSession() { m.sessions.Add(1) }

// LeaveSession deregisters a client session.
func (m *Machine) LeaveSession() { m.sessions.Add(-1) }

// ActiveSessions returns the number of registered sessions.
func (m *Machine) ActiveSessions() int { return int(m.sessions.Load()) }

// TxnCost returns the CPU service time for one transaction attempt that
// executes nStmts statements, including the commercial platform's
// per-session overhead at the current multiprogramming level.
func (m *Machine) TxnCost(nStmts int) time.Duration {
	d := m.cfg.TxnCPU + time.Duration(nStmts)*m.cfg.StmtCPU
	if m.cfg.SessionKnee > 0 && m.cfg.SessionOverhead > 0 {
		if over := m.ActiveSessions() - m.cfg.SessionKnee; over > 0 {
			d += time.Duration(over) * m.cfg.SessionOverhead
		}
	}
	return d
}

// UseCPU occupies one virtual CPU for duration d of simulated work. It
// blocks while all virtual CPUs are busy, which is exactly how the
// paper's single-CPU server saturates and produces a throughput plateau.
func (m *Machine) UseCPU(d time.Duration) {
	if m.cpuSlots == nil || d <= 0 {
		return
	}
	<-m.cpuSlots
	spin(d)
	m.cpuBusy.Add(int64(d))
	m.cpuSlots <- struct{}{}
}

// CPUBusy reports the cumulative CPU time charged so far; used by tests
// and by the harness to confirm saturation.
func (m *Machine) CPUBusy() time.Duration { return time.Duration(m.cpuBusy.Load()) }

// spin burns wall-clock time on the calling goroutine. A busy loop (not
// time.Sleep) is used so that one virtual CPU really does correspond to
// one core's worth of work and the semaphore enforces genuine saturation
// at sub-millisecond service times, where sleep granularity would distort
// the model.
func spin(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

package server

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/smallbank"
)

// fuzzSrv is a shared server instance for the protocol fuzzer: one
// engine and one Server reused across iterations (per-iteration engines
// would dominate the fuzz loop's cost).
var (
	fuzzOnce sync.Once
	fuzzS    *Server
)

func fuzzServer() *Server {
	fuzzOnce.Do(func() {
		db := engine.Open(engine.Config{Mode: core.SnapshotFUW, Platform: core.PlatformPostgres})
		if err := smallbank.CreateSchema(db); err != nil {
			panic(err)
		}
		if _, err := smallbank.Load(db, smallbank.LoadConfig{Customers: 4, Seed: 1}); err != nil {
			panic(err)
		}
		fuzzS = New(Config{
			DB:       db,
			MaxConns: 64,
			// Generous idle timeout: a backstop against a wedged reader,
			// never the reason an iteration ends. The tight statement
			// deadline keeps self-blocking inputs (sibling sessions
			// contending for one lock) well under the wedge timeout.
			IdleTimeout:       5 * time.Second,
			StatementDeadline: time.Second,
			MaxLine:           1 << 16,
		})
	})
	return fuzzS
}

// FuzzServerProtocol throws arbitrary bytes at the wire layer twice
// over: DecodeRequest directly (must never panic), and a full
// connection drive through ServeConn (the handler must neither panic
// nor wedge — it must return promptly once the client is gone, with no
// transaction left behind). Seeds cover truncated lines, huge lines,
// invalid UTF-8 and interleaved sessions.
func FuzzServerProtocol(f *testing.F) {
	f.Add([]byte(`{"q":"SELECT Balance FROM Checking WHERE CustomerId = 1"}` + "\n"))
	f.Add([]byte(`{"q":"BEGIN","session":3}` + "\n" + `{"q":"COMMIT","session":3}` + "\n"))
	f.Add([]byte(`{"q":"BEGIN","session":1}` + "\n" + `{"q":"BEGIN","session":2}` + "\n"))
	f.Add([]byte(`{"q":"UPDATE Checking SET Balance = Balance + 1 WHERE CustomerId = 1"}`)) // no newline: truncated
	f.Add([]byte(`{"q":"SELECT`))
	f.Add([]byte("{\"q\":\"\xff\xfe not utf8\"}\n"))
	f.Add([]byte(`{"session":99,"q":"SELECT 1"}` + "\n"))
	f.Add([]byte(`{"q":""}` + "\n"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`[1,2,3]` + "\n{}\ntrue\n"))
	f.Add(make([]byte, 9000)) // NULs: one huge garbage line

	f.Fuzz(func(t *testing.T, data []byte) {
		// Layer 1: the decoder alone, on the raw bytes as one line.
		DecodeRequest(data)

		// Layer 2: the full connection machinery over an in-memory pipe.
		srv := fuzzServer()
		sconn, cconn := net.Pipe()
		done := make(chan struct{})
		go func() {
			srv.ServeConn(sconn)
			close(done)
		}()
		// net.Pipe is synchronous: drain everything the server says so
		// its writes never block on us.
		go io.Copy(io.Discard, cconn)

		cconn.SetWriteDeadline(time.Now().Add(2 * time.Second))
		cconn.Write(data)
		cconn.Close()

		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("connection handler wedged on %d-byte input", len(data))
		}
		// Whatever transactions the bytes opened died with the conn.
		deadline := time.Now().Add(2 * time.Second)
		for srv.db.InFlightTxns() != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("leaked %d transactions after connection teardown", srv.db.InFlightTxns())
			}
			time.Sleep(time.Millisecond)
		}
	})
}

// Package server implements the engine's network front-end: a
// long-running TCP server speaking a newline-delimited JSON protocol
// (proto.go), with a per-connection session layer that owns transaction
// lifecycle end-to-end. The contract is disconnect safety: a client
// disconnect, a read or write error, an idle timeout or a hard drain
// abort ALWAYS rolls back the connection's open transactions and
// releases its admission slot — no leaked locks, no pinned snapshots,
// no gate-slot leaks. Connection limits map onto an
// internal/admission.Gate (excess connections are shed with a
// structured retriable error, never a hung dial), per-statement
// deadlines map onto Tx.SetDeadline, and Shutdown layers a graceful
// drain on DB.Close semantics: stop accepting, notify sessions, wait a
// bounded drain window, hard-abort the stragglers.
package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sicost/internal/admission"
	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/faultinject"
)

// Fault-point names of the wire layer. All three model the network
// failing out from under a live session; the invariant under every one
// of them is the same: the connection's sessions roll back and the
// admission slot releases.
const (
	// FaultConnRead fires before each request read. An injected error
	// is a failed read (the connection tears down, open transactions
	// roll back); a delay stalls the reader.
	FaultConnRead = "server/conn/read"
	// FaultConnWrite fires before each response write. An injected
	// error becomes a partial write — a prefix of the response reaches
	// the wire, then the connection tears down; a delay models a slow
	// or congested peer.
	FaultConnWrite = "server/conn/write"
	// FaultConnHangup fires after a statement executes and before its
	// response is written. An injected error drops the connection right
	// there — the mid-statement hangup whose outcome the client can
	// never learn.
	FaultConnHangup = "server/conn/hangup"
)

// Config assembles a server.
type Config struct {
	// DB is the engine instance served; the server never closes it
	// (callers own the DB.Close ordering: Shutdown first, then Close).
	DB *engine.DB
	// MaxConns bounds concurrently served connections via an admission
	// gate; 0 means DefaultMaxConns.
	MaxConns int
	// ConnQueue bounds how many connections past MaxConns may wait for
	// a slot before the rest are shed with core.ErrOverload.
	ConnQueue int
	// AcceptTimeout bounds a queued connection's wait for a slot; 0
	// means DefaultAcceptTimeout. The bound is what turns overload into
	// a fast structured error instead of a hung dial.
	AcceptTimeout time.Duration
	// IdleTimeout closes a connection that sends no request for this
	// long, rolling back its open transactions — the abandoned-session
	// reaper; 0 disables it.
	IdleTimeout time.Duration
	// StatementDeadline is the per-statement time budget, mapped onto
	// Tx.SetDeadline (see SessionConfig); 0 means
	// DefaultStatementDeadline, negative disables it. The default is
	// load-bearing for liveness, not just hygiene: a connection's
	// sessions share one goroutine, so session 2 waiting on a lock that
	// session 1 of the SAME connection holds can never be released by
	// the client — only the deadline unwedges it (statements failing
	// with core.ErrTxDeadline after the budget).
	StatementDeadline time.Duration
	// DrainWindow is how long Shutdown waits for connections to finish
	// after notifying them, before hard-closing the rest; 0 means
	// DefaultDrainWindow.
	DrainWindow time.Duration
	// MaxLine bounds one request line in bytes; past it the connection
	// is closed (the line boundary is unrecoverable). 0 means
	// DefaultMaxLine.
	MaxLine int
	// Faults is the registry behind the server/conn/* fault points; nil
	// disables them.
	Faults *faultinject.Registry
}

// Defaults for the zero Config fields.
const (
	DefaultMaxConns          = 256
	DefaultAcceptTimeout     = time.Second
	DefaultDrainWindow       = 2 * time.Second
	DefaultMaxLine           = 1 << 20
	DefaultStatementDeadline = 10 * time.Second
)

// connWriteTimeout bounds every response write, so a peer that stops
// reading cannot wedge a session (or the drain) behind a full socket
// buffer.
const connWriteTimeout = 5 * time.Second

// Server is one TCP front-end over one engine instance.
type Server struct {
	cfg  Config
	db   *engine.DB
	gate *admission.Gate

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	draining bool

	wg sync.WaitGroup // one per accepted connection

	// Counters (see Stats).
	accepted     atomic.Uint64
	shed         atomic.Uint64
	drained      atomic.Uint64
	hardClosed   atomic.Uint64
	abortedOnDsc atomic.Uint64
	idleTimeouts atomic.Uint64
	readErrors   atomic.Uint64
	writeErrors  atomic.Uint64
	protoErrors  atomic.Uint64
	hangups      atomic.Uint64
	requests     atomic.Uint64
	sessions     atomic.Int64
}

// New builds a server over cfg.DB.
func New(cfg Config) *Server {
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = DefaultMaxConns
	}
	if cfg.AcceptTimeout <= 0 {
		cfg.AcceptTimeout = DefaultAcceptTimeout
	}
	if cfg.DrainWindow <= 0 {
		cfg.DrainWindow = DefaultDrainWindow
	}
	if cfg.MaxLine <= 0 {
		cfg.MaxLine = DefaultMaxLine
	}
	if cfg.StatementDeadline == 0 {
		cfg.StatementDeadline = DefaultStatementDeadline
	}
	return &Server{
		cfg:   cfg,
		db:    cfg.DB,
		gate:  admission.NewGate(cfg.MaxConns, cfg.ConnQueue),
		conns: map[*conn]struct{}{},
	}
}

// Serve accepts connections on ln until Shutdown closes it. It returns
// nil on a drain-initiated stop, the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return core.ErrShuttingDown
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go s.handle(nc)
	}
}

// ServeConn runs one already-accepted connection through the full
// machinery — admission, protocol loop, teardown — and blocks until the
// connection is done. The in-process transports (tests, fuzzing) use it
// directly.
func (s *Server) ServeConn(nc net.Conn) {
	s.wg.Add(1)
	s.handle(nc)
}

// handle is the per-connection goroutine: admission first, then the
// request loop, then teardown (which owns the disconnect-safety
// guarantee).
func (s *Server) handle(nc net.Conn) {
	defer s.wg.Done()
	s.accepted.Add(1)

	// Connection admission: a slot or a fast structured rejection. The
	// deadline bounds the queue wait so an overloaded server never
	// leaves a dial hanging.
	if err := s.gate.Acquire(time.Now().Add(s.cfg.AcceptTimeout)); err != nil {
		s.shed.Add(1)
		r := errResponse(err, false)
		r.Notice = "connection rejected"
		r.Final = true
		nc.SetWriteDeadline(time.Now().Add(connWriteTimeout))
		nc.Write(EncodeResponse(r))
		nc.Close()
		return
	}
	defer s.gate.Release()

	c := &conn{srv: s, nc: nc, sessions: map[int]*Session{}}
	s.mu.Lock()
	if s.draining {
		// Raced a starting drain: reject like a closed gate.
		s.mu.Unlock()
		r := errResponse(core.ErrShuttingDown, false)
		r.Final = true
		nc.SetWriteDeadline(time.Now().Add(connWriteTimeout))
		nc.Write(EncodeResponse(r))
		nc.Close()
		return
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()

	c.loop()

	s.mu.Lock()
	delete(s.conns, c)
	draining := s.draining
	s.mu.Unlock()
	if draining && !c.forced.Load() {
		s.drained.Add(1)
	}
}

// Shutdown drains the server: stop accepting, notify every live
// connection, wait up to DrainWindow for them to finish, then
// hard-close the stragglers (their teardown rolls back open
// transactions). It blocks until every connection goroutine has exited;
// the caller then closes the DB. Idempotent; concurrent calls all block
// until the drain completes.
func (s *Server) Shutdown() {
	s.mu.Lock()
	first := !s.draining
	s.draining = true
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if first {
		if ln != nil {
			ln.Close()
		}
		// Wake queued connection Acquires with ErrShuttingDown and fail
		// all future ones: no admission slot outlives the drain.
		s.gate.Close()
		for _, c := range conns {
			c.notifyDrain()
		}
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainWindow):
		s.mu.Lock()
		rest := make([]*conn, 0, len(s.conns))
		for c := range s.conns {
			rest = append(rest, c)
		}
		s.mu.Unlock()
		for _, c := range rest {
			c.forced.Store(true)
			s.hardClosed.Add(1)
			c.nc.Close()
		}
		<-done
	}
}

// Stats is a point-in-time snapshot of the server counters; cmd/sisqld
// publishes it as the sicost_server expvar.
type Stats struct {
	// Conns and Sessions are live gauges; Accepted counts every
	// connection ever handed to the server.
	Conns    int
	Sessions int64
	Accepted uint64
	// Shed counts connections rejected at admission (queue full, wait
	// expired, or draining).
	Shed uint64
	// Drained counts connections that finished gracefully during a
	// drain; HardClosed the stragglers forcibly closed after the drain
	// window.
	Drained    uint64
	HardClosed uint64
	// AbortedOnDisconnect counts open transactions rolled back because
	// their connection died (disconnect, read/write error, idle
	// timeout, hard close).
	AbortedOnDisconnect uint64
	// IdleTimeouts, ReadErrors, WriteErrors, ProtocolErrors and Hangups
	// attribute connection teardowns.
	IdleTimeouts   uint64
	ReadErrors     uint64
	WriteErrors    uint64
	ProtocolErrors uint64
	Hangups        uint64
	// Requests counts request lines dispatched.
	Requests uint64
	// Gate is the connection admission gate's snapshot; after a
	// completed drain InFlight and QueueDepth must be zero (the
	// gate-leak invariant).
	Gate admission.GateStats
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	conns := len(s.conns)
	s.mu.Unlock()
	return Stats{
		Conns:               conns,
		Sessions:            s.sessions.Load(),
		Accepted:            s.accepted.Load(),
		Shed:                s.shed.Load(),
		Drained:             s.drained.Load(),
		HardClosed:          s.hardClosed.Load(),
		AbortedOnDisconnect: s.abortedOnDsc.Load(),
		IdleTimeouts:        s.idleTimeouts.Load(),
		ReadErrors:          s.readErrors.Load(),
		WriteErrors:         s.writeErrors.Load(),
		ProtocolErrors:      s.protoErrors.Load(),
		Hangups:             s.hangups.Load(),
		Requests:            s.requests.Load(),
		Gate:                s.gate.Stats(),
	}
}

// conn is one live connection.
type conn struct {
	srv      *Server
	nc       net.Conn
	wmu      sync.Mutex // serializes loop writes against drain notices
	sessions map[int]*Session
	// forced marks a connection hard-closed by the drain (so its exit
	// counts as a hard abort, not a graceful drain).
	forced atomic.Bool
}

// loop reads requests until the connection dies, then tears down. Every
// exit path funnels through teardown, which rolls back open
// transactions — that single funnel is the disconnect-safety argument.
func (c *conn) loop() {
	defer c.teardown()
	s := c.srv
	sc := bufio.NewScanner(c.nc)
	sc.Buffer(make([]byte, 4096), s.cfg.MaxLine)
	for {
		if d := s.cfg.IdleTimeout; d > 0 {
			c.nc.SetReadDeadline(time.Now().Add(d))
		}
		if err := s.cfg.Faults.Fire(FaultConnRead, faultinject.Ctx{}); err != nil {
			s.readErrors.Add(1)
			return
		}
		if !sc.Scan() {
			switch err := sc.Err(); {
			case err == nil:
				// EOF: clean client disconnect.
			case errors.Is(err, bufio.ErrTooLong):
				s.protoErrors.Add(1)
				c.write(Response{
					Err:   fmt.Sprintf("server: request line exceeds %d bytes", s.cfg.MaxLine),
					Abort: core.AbortOther.String(), Final: true,
				})
			case isTimeout(err):
				s.idleTimeouts.Add(1)
				c.write(Response{Notice: "idle timeout, connection closed", Final: true})
			default:
				s.readErrors.Add(1)
			}
			return
		}
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		s.requests.Add(1)
		req, err := DecodeRequest(line)
		if err != nil {
			s.protoErrors.Add(1)
			if !c.write(errResponse(err, false)) {
				return
			}
			continue
		}
		sess := c.sessions[req.Session]
		if sess == nil {
			sess = NewSession(s.db, SessionConfig{StatementDeadline: s.cfg.StatementDeadline})
			c.sessions[req.Session] = sess
			s.sessions.Add(1)
		}
		resp := sess.Execute(req.Q)
		resp.Session = req.Session
		// The statement has executed; a hangup here is the failure the
		// client can never classify (did my COMMIT land?).
		if err := s.cfg.Faults.Fire(FaultConnHangup, faultinject.Ctx{}); err != nil {
			s.hangups.Add(1)
			return
		}
		if !c.write(resp) {
			return
		}
	}
}

// teardown ends the connection: every session's open transaction rolls
// back, the session gauge drops, the socket closes. Runs exactly once,
// on the connection's own goroutine, after the loop exits — so session
// handles are never touched concurrently.
func (c *conn) teardown() {
	for _, sess := range c.sessions {
		if sess.Close() {
			c.srv.abortedOnDsc.Add(1)
		}
	}
	c.srv.sessions.Add(-int64(len(c.sessions)))
	c.nc.Close()
}

// write sends one response line, reporting false when the connection is
// no longer writable (the loop then exits into teardown). The write
// fault point turns injected errors into partial writes: a prefix of
// the line reaches the wire, then the connection dies.
func (c *conn) write(r Response) bool {
	b := EncodeResponse(r)
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.srv.cfg.Faults.Fire(FaultConnWrite, faultinject.Ctx{}); err != nil {
		c.nc.SetWriteDeadline(time.Now().Add(connWriteTimeout))
		c.nc.Write(b[:len(b)/2])
		c.srv.writeErrors.Add(1)
		return false
	}
	c.nc.SetWriteDeadline(time.Now().Add(connWriteTimeout))
	if _, err := c.nc.Write(b); err != nil {
		c.srv.writeErrors.Add(1)
		return false
	}
	return true
}

// notifyDrain sends the drain notice (best-effort: a dead peer is
// already on its way to teardown).
func (c *conn) notifyDrain() {
	c.write(Response{Notice: "draining: server shutting down, finish or disconnect"})
}

// isTimeout reports whether a read error is a deadline expiry (the idle
// timeout) rather than a transport failure.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

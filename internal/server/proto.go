package server

import (
	"encoding/json"
	"fmt"
	"strings"

	"sicost/internal/core"
)

// The wire protocol is newline-delimited JSON: one request object per
// line in, one response object per line out, in request order. A
// connection multiplexes up to MaxSessions independent SQL sessions,
// selected per request by the "session" field (default 0) — the network
// equivalent of cmd/sisql's \1..\9 session switching.

// Request is one client request line.
type Request struct {
	// Q is the SQL statement (the sqlmini dialect, plus
	// BEGIN/COMMIT/ROLLBACK).
	Q string `json:"q"`
	// Session selects which of the connection's sessions executes Q;
	// sessions are created on first use. Must be in [0, MaxSessions).
	Session int `json:"session,omitempty"`
}

// Response is one server response line.
type Response struct {
	// Session echoes the request's session id.
	Session int `json:"session,omitempty"`
	// Status reports the outcome of a successful request: "BEGIN",
	// "COMMIT", "ROLLBACK" or "OK".
	Status string `json:"status,omitempty"`
	// Rows carries a SELECT's result rows: integers as JSON numbers,
	// strings as JSON strings.
	Rows [][]any `json:"rows,omitempty"`
	// Affected is the row count of a successful UPDATE/INSERT/DELETE.
	Affected int `json:"affected,omitempty"`
	// Err is the error message of a failed request.
	Err string `json:"error,omitempty"`
	// Abort is the core.ClassifyAbort class name of Err
	// ("serialization", "deadline", "overload", ...).
	Abort string `json:"abort,omitempty"`
	// Retriable marks transient failures (core.IsRetriable): abort the
	// transaction, back off, rerun.
	Retriable bool `json:"retriable,omitempty"`
	// InTx reports whether the session still holds an open transaction
	// after this request (a failed statement poisons but does not close
	// an explicit transaction — the client must ROLLBACK).
	InTx bool `json:"in_tx,omitempty"`
	// Notice carries out-of-band server messages: the drain
	// notification, the idle-timeout close, the overload shed.
	Notice string `json:"notice,omitempty"`
	// Final marks the connection's last response: the server closes the
	// connection after writing it (shed, protocol failure, idle
	// timeout).
	Final bool `json:"final,omitempty"`
}

// MaxSessions is the per-connection session bound: requests selecting a
// session id outside [0, MaxSessions) are rejected, so a hostile client
// cannot grow the session map without opening connections (which the
// admission gate bounds).
const MaxSessions = 16

// DecodeRequest parses one request line. It never panics on arbitrary
// bytes (FuzzServerProtocol pins that down) and rejects session ids
// outside the per-connection bound.
func DecodeRequest(line []byte) (Request, error) {
	var req Request
	if err := json.Unmarshal(line, &req); err != nil {
		return Request{}, fmt.Errorf("server: bad request: %w", err)
	}
	if req.Session < 0 || req.Session >= MaxSessions {
		return Request{}, fmt.Errorf("server: session %d out of [0, %d)", req.Session, MaxSessions)
	}
	if strings.TrimSpace(req.Q) == "" {
		return Request{}, fmt.Errorf("server: empty statement")
	}
	return req, nil
}

// EncodeResponse renders one response line, newline included. Response
// values are JSON-safe by construction (int64 and string row values),
// so encoding cannot fail.
func EncodeResponse(r Response) []byte {
	b, err := json.Marshal(r)
	if err != nil {
		// Unreachable with well-formed Rows; keep the wire alive anyway.
		b, _ = json.Marshal(Response{Err: "server: response encoding failed", Abort: core.AbortOther.String()})
	}
	return append(b, '\n')
}

// errResponse builds the structured error reply for err, carrying the
// abort taxonomy class and the retriable flag the client's retry
// discipline keys on.
func errResponse(err error, inTx bool) Response {
	return Response{
		Err:       err.Error(),
		Abort:     core.ClassifyAbort(err).String(),
		Retriable: core.IsRetriable(err),
		InTx:      inTx,
	}
}

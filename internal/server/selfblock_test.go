package server

import (
	"testing"
	"time"

	"sicost/internal/core"
)

// TestSelfBlockAcrossSessions pins down the one-goroutine liveness
// hazard: a connection's sessions execute sequentially, so if session 2
// waits on a lock session 1 of the same connection holds, no client
// action can ever release it — the connection has self-deadlocked. The
// default statement deadline must unwedge it: the blocked statement
// fails with the deadline reason instead of hanging the connection (and
// with it, Shutdown) forever.
func TestSelfBlockAcrossSessions(t *testing.T) {
	db := newBankDB(t, 4)
	_, addr := startServer(t, Config{DB: db, StatementDeadline: 200 * time.Millisecond})
	c := dial(t, addr)
	defer c.nc.Close()

	c.mustOK("BEGIN", 1)
	c.mustOK("UPDATE Checking SET Balance = Balance + 1 WHERE CustomerId = 1", 1)
	c.mustOK("BEGIN", 2)

	done := make(chan Response, 1)
	go func() { done <- c.send("UPDATE Checking SET Balance = Balance + 2 WHERE CustomerId = 1", 2) }()
	select {
	case r := <-done:
		if r.Err == "" {
			t.Fatalf("conflicting write in sibling session succeeded: %+v", r)
		}
		if r.Abort != core.AbortDeadline.String() {
			t.Fatalf("abort class %q, want %q", r.Abort, core.AbortDeadline)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("connection self-deadlocked: session 2 wedged on session 1's lock")
	}

	// Session 1 is untouched; session 2 is poisoned but clearable.
	c.mustOK("COMMIT", 1)
	c.mustOK("ROLLBACK", 2)
}

package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/faultinject"
	"sicost/internal/smallbank"
)

// newBankDB opens a small SmallBank database for server tests.
func newBankDB(t testing.TB, customers int) *engine.DB {
	t.Helper()
	db := engine.Open(engine.Config{Mode: core.SnapshotFUW, Platform: core.PlatformPostgres})
	if err := smallbank.CreateSchema(db); err != nil {
		t.Fatal(err)
	}
	if _, err := smallbank.Load(db, smallbank.LoadConfig{Customers: customers, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	return db
}

// startServer serves cfg on an ephemeral loopback listener and returns
// the server plus its address. Cleanup drains the server and closes the
// database, asserting the no-leak postconditions every test shares.
func startServer(t testing.TB, cfg Config) (*Server, string) {
	t.Helper()
	srv := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Shutdown()
		if n := cfg.DB.InFlightTxns(); n != 0 {
			t.Errorf("transaction leak after drain: %d in flight", n)
		}
		held, queued := cfg.DB.LockAudit()
		if held != 0 || queued != 0 {
			t.Errorf("lock leak after drain: %d held, %d queued", held, queued)
		}
		st := srv.Stats()
		if st.Gate.InFlight != 0 || st.Gate.QueueDepth != 0 {
			t.Errorf("gate leak after drain: %d in flight, %d queued", st.Gate.InFlight, st.Gate.QueueDepth)
		}
		cfg.DB.Close()
	})
	return srv, ln.Addr().String()
}

// client is a test-side protocol client.
type client struct {
	t  testing.TB
	nc net.Conn
	br *bufio.Reader
}

func dial(t testing.TB, addr string) *client {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return &client{t: t, nc: nc, br: bufio.NewReader(nc)}
}

func (c *client) send(q string, session int) Response {
	c.t.Helper()
	req, _ := json.Marshal(Request{Q: q, Session: session})
	if _, err := c.nc.Write(append(req, '\n')); err != nil {
		c.t.Fatalf("write %q: %v", q, err)
	}
	return c.read()
}

func (c *client) read() Response {
	c.t.Helper()
	line, err := c.br.ReadBytes('\n')
	if err != nil {
		c.t.Fatalf("read response: %v", err)
	}
	var r Response
	if err := json.Unmarshal(line, &r); err != nil {
		c.t.Fatalf("bad response line %q: %v", line, err)
	}
	return r
}

// mustOK fails the test on an error response.
func (c *client) mustOK(q string, session int) Response {
	c.t.Helper()
	r := c.send(q, session)
	if r.Err != "" {
		c.t.Fatalf("%q: unexpected error %q (abort %s)", q, r.Err, r.Abort)
	}
	return r
}

func TestServerStatements(t *testing.T) {
	db := newBankDB(t, 10)
	_, addr := startServer(t, Config{DB: db})
	c := dial(t, addr)
	defer c.nc.Close()

	r := c.mustOK("SELECT Balance FROM Checking WHERE CustomerId = 1", 0)
	if len(r.Rows) != 1 || len(r.Rows[0]) != 1 {
		t.Fatalf("rows = %v, want one single-column row", r.Rows)
	}
	bal, ok := r.Rows[0][0].(float64) // JSON numbers decode as float64
	if !ok {
		t.Fatalf("balance %v (%T), want a number", r.Rows[0][0], r.Rows[0][0])
	}

	if r := c.mustOK("BEGIN", 0); r.Status != "BEGIN" || !r.InTx {
		t.Fatalf("BEGIN -> %+v", r)
	}
	c.mustOK("UPDATE Checking SET Balance = Balance + 7 WHERE CustomerId = 1", 0)
	if r := c.mustOK("COMMIT", 0); r.Status != "COMMIT" || r.InTx {
		t.Fatalf("COMMIT -> %+v", r)
	}

	r = c.mustOK("SELECT Balance FROM Checking WHERE CustomerId = 1", 0)
	if got := r.Rows[0][0].(float64); got != bal+7 {
		t.Fatalf("balance after commit = %v, want %v", got, bal+7)
	}

	// Statement errors carry the abort taxonomy and leave the line usable.
	r = c.send("SELECT * FROM NoSuchTable WHERE X = 1", 0)
	if r.Err == "" || r.Retriable {
		t.Fatalf("bad table -> %+v, want non-retriable error", r)
	}
	c.mustOK("SELECT Balance FROM Checking WHERE CustomerId = 2", 0)
}

func TestServerSessionMultiplexing(t *testing.T) {
	db := newBankDB(t, 10)
	_, addr := startServer(t, Config{DB: db})
	c := dial(t, addr)
	defer c.nc.Close()

	// Two sessions on one connection: session 1's open transaction does
	// not see session 2's committed write until it restarts (SI), and the
	// echoed session ids route responses.
	c.mustOK("BEGIN", 1)
	before := c.mustOK("SELECT Balance FROM Checking WHERE CustomerId = 3", 1)
	c.mustOK("UPDATE Checking SET Balance = Balance + 100 WHERE CustomerId = 3", 2)
	during := c.mustOK("SELECT Balance FROM Checking WHERE CustomerId = 3", 1)
	if during.Session != 1 {
		t.Fatalf("session echo = %d, want 1", during.Session)
	}
	if before.Rows[0][0].(float64) != during.Rows[0][0].(float64) {
		t.Fatalf("snapshot read moved inside the transaction: %v -> %v", before.Rows[0], during.Rows[0])
	}
	c.mustOK("COMMIT", 1)
	after := c.mustOK("SELECT Balance FROM Checking WHERE CustomerId = 3", 1)
	if after.Rows[0][0].(float64) != before.Rows[0][0].(float64)+100 {
		t.Fatalf("committed write not visible: %v", after.Rows[0])
	}

	if r := c.send("SELECT 1", MaxSessions); r.Err == "" {
		t.Fatalf("session %d accepted, want out-of-range rejection", MaxSessions)
	}
}

func TestServerDisconnectRollsBack(t *testing.T) {
	db := newBankDB(t, 10)
	srv, addr := startServer(t, Config{DB: db})

	c := dial(t, addr)
	c.mustOK("BEGIN", 0)
	c.mustOK("UPDATE Checking SET Balance = Balance + 50 WHERE CustomerId = 1", 0)
	before := readBalance(t, addr, 1)

	// Abrupt disconnect mid-transaction: the write must vanish and the
	// transaction, its locks and its admission slot must be released.
	c.nc.Close()
	waitFor(t, "disconnect rollback", func() bool {
		return db.InFlightTxns() == 0 && srv.Stats().AbortedOnDisconnect == 1
	})
	if held, queued := db.LockAudit(); held != 0 || queued != 0 {
		t.Fatalf("locks leaked after disconnect: %d held, %d queued", held, queued)
	}
	if got := readBalance(t, addr, 1); got != before {
		t.Fatalf("uncommitted write survived disconnect: %d, want %d", got, before)
	}
}

func TestServerShedsPastMaxConns(t *testing.T) {
	db := newBankDB(t, 4)
	_, addr := startServer(t, Config{DB: db, MaxConns: 1, AcceptTimeout: 30 * time.Millisecond})

	holder := dial(t, addr)
	defer holder.nc.Close()
	holder.mustOK("SELECT Balance FROM Checking WHERE CustomerId = 1", 0)

	shed := dial(t, addr)
	defer shed.nc.Close()
	r := shed.read() // shed without sending anything: admission is per connection
	if r.Err == "" || !r.Retriable || !r.Final {
		t.Fatalf("second connection -> %+v, want final retriable overload", r)
	}
	if r.Abort != core.AbortOverload.String() {
		t.Fatalf("shed abort class = %q, want %q", r.Abort, core.AbortOverload)
	}
}

func TestServerIdleTimeout(t *testing.T) {
	db := newBankDB(t, 4)
	srv, addr := startServer(t, Config{DB: db, IdleTimeout: 50 * time.Millisecond})

	c := dial(t, addr)
	defer c.nc.Close()
	c.mustOK("BEGIN", 0)
	c.mustOK("UPDATE Checking SET Balance = Balance + 1 WHERE CustomerId = 2", 0)

	r := c.read() // the idle reaper's final notice
	if !r.Final || r.Notice == "" {
		t.Fatalf("idle close -> %+v, want final notice", r)
	}
	waitFor(t, "idle rollback", func() bool {
		st := srv.Stats()
		return st.IdleTimeouts == 1 && st.AbortedOnDisconnect == 1 && db.InFlightTxns() == 0
	})
}

func TestServerStatementDeadline(t *testing.T) {
	db := newBankDB(t, 4)
	_, addr := startServer(t, Config{DB: db, StatementDeadline: time.Nanosecond})
	c := dial(t, addr)
	defer c.nc.Close()

	r := c.send("SELECT Balance FROM Checking WHERE CustomerId = 1", 0)
	if r.Err == "" || r.Abort != core.AbortDeadline.String() {
		t.Fatalf("instant deadline -> %+v, want deadline abort", r)
	}
}

func TestServerDrainAbortsOpenTxns(t *testing.T) {
	db := newBankDB(t, 10)
	srv, addr := startServer(t, Config{DB: db, DrainWindow: 80 * time.Millisecond})

	idle := dial(t, addr)
	defer idle.nc.Close()
	idle.mustOK("BEGIN", 0)
	idle.mustOK("UPDATE Checking SET Balance = Balance + 9 WHERE CustomerId = 5", 0)
	before := readBalance(t, addr, 5)

	// The client never finishes: Shutdown must notify, wait the window,
	// then hard-abort it — and the write must not survive.
	start := time.Now()
	srv.Shutdown()
	if waited := time.Since(start); waited < 80*time.Millisecond {
		t.Fatalf("Shutdown returned after %v, before the drain window", waited)
	}
	if r := idle.read(); r.Notice == "" {
		t.Fatalf("drain notice -> %+v", r)
	}
	st := srv.Stats()
	if st.HardClosed != 1 || st.AbortedOnDisconnect != 1 {
		t.Fatalf("drain stats = %+v, want 1 hard-close aborting 1 txn", st)
	}
	if db.InFlightTxns() != 0 {
		t.Fatalf("transaction survived the drain")
	}
	tx := db.Begin()
	rec, err := tx.Get(smallbank.TableChecking, core.Int(5))
	if err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if got := rec[1].Int64(); got != before {
		t.Fatalf("hard-aborted write persisted: %d, want %d", got, before)
	}

	// New connections after the drain either fail to dial (listener
	// closed) or are rejected with the shutdown class.
	if nc, err := net.Dial("tcp", addr); err == nil {
		nc.Close()
	}
}

func TestServerDrainGraceful(t *testing.T) {
	db := newBankDB(t, 4)
	srv, addr := startServer(t, Config{DB: db, DrainWindow: 2 * time.Second})

	c := dial(t, addr)
	c.mustOK("BEGIN", 0)
	done := make(chan struct{})
	go func() { srv.Shutdown(); close(done) }()
	if r := c.read(); r.Notice == "" {
		t.Fatalf("drain notice -> %+v", r)
	}
	c.mustOK("COMMIT", 0)
	c.nc.Close()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Shutdown did not return after the last connection finished")
	}
	st := srv.Stats()
	if st.Drained != 1 || st.HardClosed != 0 {
		t.Fatalf("drain stats = %+v, want 1 graceful drain, 0 hard closes", st)
	}
	if st.AbortedOnDisconnect != 0 {
		t.Fatalf("graceful commit counted as disconnect abort: %+v", st)
	}
}

func TestServerWireFaults(t *testing.T) {
	faults := faultinject.New(7)
	db := newBankDB(t, 10)
	srv, addr := startServer(t, Config{DB: db, Faults: faults})

	// A read fault mid-transaction tears the connection down and rolls
	// back, exactly like a disconnect.
	faults.Arm(faultinject.Spec{Point: FaultConnRead, Rate: 1, After: 2, Action: faultinject.ActError})
	c := dial(t, addr)
	c.mustOK("BEGIN", 0)
	c.mustOK("UPDATE Checking SET Balance = Balance + 3 WHERE CustomerId = 1", 0)
	waitFor(t, "read-fault rollback", func() bool {
		st := srv.Stats()
		return st.ReadErrors >= 1 && st.AbortedOnDisconnect >= 1 && db.InFlightTxns() == 0
	})
	c.nc.Close()
	faults.Disarm(FaultConnRead)

	// A write fault becomes a partial response: the client sees a
	// truncated line, the server rolls back the session.
	faults.Arm(faultinject.Spec{Point: FaultConnWrite, Rate: 1, Action: faultinject.ActError})
	c2 := dial(t, addr)
	req, _ := json.Marshal(Request{Q: "BEGIN"})
	if _, err := c2.nc.Write(append(req, '\n')); err != nil {
		t.Fatal(err)
	}
	line, _ := c2.br.ReadString('\n')
	if strings.Contains(line, "\n") && json.Valid([]byte(line)) {
		t.Fatalf("partial write produced a complete valid line: %q", line)
	}
	waitFor(t, "write-fault teardown", func() bool { return srv.Stats().WriteErrors >= 1 })
	c2.nc.Close()
	faults.Disarm(FaultConnWrite)

	// A hangup fault drops the connection after the statement ran: the
	// client never learns the outcome, but nothing leaks server-side.
	faults.Arm(faultinject.Spec{Point: FaultConnHangup, Rate: 1, Action: faultinject.ActError})
	c3 := dial(t, addr)
	req3, _ := json.Marshal(Request{Q: "SELECT Balance FROM Checking WHERE CustomerId = 2"})
	if _, err := c3.nc.Write(append(req3, '\n')); err != nil {
		t.Fatal(err)
	}
	if _, err := c3.br.ReadString('\n'); err == nil {
		t.Fatal("hangup fault still delivered a response")
	}
	waitFor(t, "hangup teardown", func() bool {
		return srv.Stats().Hangups >= 1 && db.InFlightTxns() == 0
	})
	c3.nc.Close()
	faults.Disarm(FaultConnHangup)
}

func TestServerProtocolErrors(t *testing.T) {
	db := newBankDB(t, 4)
	_, addr := startServer(t, Config{DB: db, MaxLine: 512})
	c := dial(t, addr)
	defer c.nc.Close()

	// Garbage keeps the line alive (the frame boundary is intact)...
	if _, err := c.nc.Write([]byte("not json\n")); err != nil {
		t.Fatal(err)
	}
	if r := c.read(); r.Err == "" || r.Final {
		t.Fatalf("garbage line -> %+v, want non-final error", r)
	}
	c.mustOK("SELECT Balance FROM Checking WHERE CustomerId = 1", 0)

	// ...but an over-long line closes the connection: past the scanner
	// cap the boundary is unrecoverable.
	if _, err := c.nc.Write([]byte(strings.Repeat("x", 4096) + "\n")); err != nil {
		t.Fatal(err)
	}
	if r := c.read(); !r.Final || r.Err == "" {
		t.Fatalf("over-long line -> %+v, want final error", r)
	}
}

// readBalance fetches Checking.Balance for customer id over a throwaway
// connection.
func readBalance(t testing.TB, addr string, id int) int64 {
	t.Helper()
	c := dial(t, addr)
	defer c.nc.Close()
	r := c.mustOK(fmt.Sprintf("SELECT Balance FROM Checking WHERE CustomerId = %d", id), 0)
	return int64(r.Rows[0][0].(float64))
}

// waitFor polls cond until it holds or a deadline expires — connection
// teardown runs on the server goroutine after the client's Close
// returns, so leak checks need a settle window.
func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// BenchmarkServerRoundTrip measures one autocommit SELECT round-trip
// over loopback TCP — the protocol's floor: framing, JSON, session
// dispatch, engine read, response encode.
func BenchmarkServerRoundTrip(b *testing.B) {
	db := newBankDB(b, 100)
	_, addr := startServer(b, Config{DB: db})
	c := dial(b, addr)
	defer c.nc.Close()
	req := []byte(`{"q":"SELECT Balance FROM Checking WHERE CustomerId = 42"}` + "\n")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.nc.Write(req); err != nil {
			b.Fatal(err)
		}
		if _, err := c.br.ReadBytes('\n'); err != nil {
			b.Fatal(err)
		}
	}
}

package server

import (
	"strings"
	"time"

	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/sqlmini"
)

// SessionConfig parameterizes one SQL session.
type SessionConfig struct {
	// StatementDeadline, when positive, bounds every statement: each
	// dispatch re-arms the open transaction's Tx.SetDeadline to now +
	// StatementDeadline (auto-commit transactions are stamped the same
	// way through the sqlmini tx-init hook). Expiry fails the statement
	// with core.ErrTxDeadline and poisons the transaction.
	StatementDeadline time.Duration
}

// Session is one SQL session: the transport-independent execution layer
// shared by the TCP server (per-connection sessions) and cmd/sisql (the
// in-process shell), so the two cannot diverge on parse, execution or
// abort classification. Like engine.Tx it is a single-goroutine handle;
// the owner must Close it when the transport goes away, which rolls
// back any open transaction.
type Session struct {
	sql *sqlmini.Session
	cfg SessionConfig
}

// NewSession opens a session on db.
func NewSession(db *engine.DB, cfg SessionConfig) *Session {
	s := &Session{sql: sqlmini.NewSession(db), cfg: cfg}
	if cfg.StatementDeadline > 0 {
		s.sql.SetTxInit(func(tx *engine.Tx) {
			tx.SetDeadline(time.Now().Add(cfg.StatementDeadline))
		})
	}
	return s
}

// InTx reports whether the session holds an open transaction.
func (s *Session) InTx() bool { return s.sql.Tx() != nil }

// Tx exposes the open transaction (nil outside one), for tagging.
func (s *Session) Tx() *engine.Tx { return s.sql.Tx() }

// Execute runs one line — BEGIN/COMMIT/ROLLBACK or a sqlmini statement
// — and returns the structured response. Errors never close the
// session: a failed statement inside an explicit transaction leaves the
// (poisoned) transaction open, exactly like PostgreSQL's "current
// transaction is aborted" state, and the response's InTx field says so.
func (s *Session) Execute(q string) Response {
	// Per-statement budget: re-arm the open transaction's deadline so a
	// long transaction gets StatementDeadline per statement — COMMIT
	// included — not in total. (Auto-commit statements are stamped by
	// the tx-init hook instead.) Without the re-arm, time burned by a
	// sibling session on the same connection would expire this one's
	// transaction between its own statements.
	if tx := s.sql.Tx(); tx != nil && s.cfg.StatementDeadline > 0 {
		tx.SetDeadline(time.Now().Add(s.cfg.StatementDeadline))
	}

	switch strings.ToUpper(strings.TrimSuffix(strings.TrimSpace(q), ";")) {
	case "BEGIN":
		if err := s.sql.Begin(); err != nil {
			return errResponse(err, s.InTx())
		}
		return Response{Status: "BEGIN", InTx: true}
	case "COMMIT":
		if err := s.sql.Commit(); err != nil {
			return errResponse(err, s.InTx())
		}
		return Response{Status: "COMMIT"}
	case "ROLLBACK":
		s.sql.Rollback()
		return Response{Status: "ROLLBACK"}
	}

	stmt, err := sqlmini.Parse(q)
	if err != nil {
		return errResponse(err, s.InTx())
	}
	if stmt.Kind == sqlmini.StmtSelect {
		rows, err := s.sql.Query(stmt, nil)
		if err != nil {
			return errResponse(err, s.InTx())
		}
		return Response{Status: "OK", Rows: encodeRows(rows), InTx: s.InTx()}
	}
	n, err := s.sql.Exec(stmt, nil)
	if err != nil {
		return errResponse(err, s.InTx())
	}
	return Response{Status: "OK", Affected: n, InTx: s.InTx()}
}

// Close ends the session, rolling back any open transaction — the
// disconnect-safety guarantee: locks, the pinned snapshot and the
// engine's admission slot are released no matter how the transport
// died. It reports whether a transaction was open (the
// aborted-on-disconnect counter).
func (s *Session) Close() (hadTx bool) {
	if s.sql.Tx() == nil {
		return false
	}
	s.sql.Rollback()
	return true
}

// encodeRows converts sqlmini rows to JSON-safe values: integers stay
// numbers, everything else goes through core.Value's string form.
func encodeRows(rows []sqlmini.Row) [][]any {
	out := make([][]any, len(rows))
	for i, row := range rows {
		vals := make([]any, len(row))
		for j, v := range row {
			if v.K == core.KindInt {
				vals[j] = v.Int64()
			} else {
				vals[j] = v.String()
			}
		}
		out[i] = vals
	}
	return out
}

package sdg

import (
	"fmt"
	"sort"

	"sicost/internal/graph"
)

// ConflictType classifies a pairwise conflict between transaction
// instances of two programs.
type ConflictType uint8

// Conflict types, named from the edge's source side: RW means the source
// program reads a version that the target program overwrites (an
// anti-dependency — the kind that can make an edge vulnerable).
const (
	RW ConflictType = iota
	WW
	WR
)

// String names the conflict type.
func (c ConflictType) String() string {
	switch c {
	case RW:
		return "rw"
	case WW:
		return "ww"
	default:
		return "wr"
	}
}

// Conflict is one concrete conflicting access pair contributing to an
// edge From→To.
type Conflict struct {
	Type ConflictType
	// FromAccess / ToAccess index into the respective program's Accesses.
	FromAccess, ToAccess int
	// Shielded is set on RW conflicts that are accompanied, for every
	// parameter assignment that produces them, by a WW conflict — the
	// First-Updater/Committer rule then prevents the transactions from
	// committing concurrently, so this conflict cannot make the edge
	// vulnerable (the paper's WC→Amg argument).
	Shielded bool
}

// Edge is one SDG edge between two programs.
type Edge struct {
	From, To string
	// Vulnerable is true when at least one unshielded RW conflict exists
	// from From to To: the transactions can run concurrently with From
	// reading a version older than To's write.
	Vulnerable bool
	Conflicts  []Conflict
}

// ID renders the edge as "From->To".
func (e *Edge) ID() string { return e.From + "->" + e.To }

// Graph is the Static Dependency Graph of a program mix.
type Graph struct {
	programs map[string]*Program
	order    []string
	edges    map[string]*Edge // keyed by Edge.ID()
}

// New computes the SDG of the given programs. Program names must be
// unique.
func New(programs ...*Program) (*Graph, error) {
	g := &Graph{
		programs: make(map[string]*Program, len(programs)),
		edges:    make(map[string]*Edge),
	}
	for _, p := range programs {
		if _, dup := g.programs[p.Name]; dup {
			return nil, fmt.Errorf("sdg: duplicate program name %q", p.Name)
		}
		g.programs[p.Name] = p
		g.order = append(g.order, p.Name)
	}
	sort.Strings(g.order)
	for _, pn := range g.order {
		for _, qn := range g.order {
			g.computeEdge(g.programs[pn], g.programs[qn])
		}
	}
	return g, nil
}

// MustNew is New for statically known program sets.
func MustNew(programs ...*Program) *Graph {
	g, err := New(programs...)
	if err != nil {
		panic(err)
	}
	return g
}

// canCollide reports whether accesses a (in one instance) and b (in
// another instance) can address the same item: same table, overlapping
// columns. Parameters of different instances can always coincide; two
// Fixed accesses collide only when they name the same fixed row.
func canCollide(a, b Access) bool {
	if a.Table != b.Table || !overlaps(a.Cols, b.Cols) {
		return false
	}
	if a.Fixed && b.Fixed {
		return a.Param == b.Param
	}
	return true
}

// shieldedRW reports whether the RW conflict (read ra of P against write
// wb of Q) is accompanied by a guaranteed WW conflict: P writes some item
// with the same parameter as ra, Q writes some item with the same
// parameter as wb, on a common table/column set. Whenever the rw
// collision occurs (ra's row equals wb's row), that WW collision occurs
// too, so SI's First-Updater-Wins forbids the two transactions from
// committing concurrently.
func shieldedRW(p *Program, ra Access, q *Program, wb Access) bool {
	// Unconditional shield: both programs write the same fixed row, so
	// *every* pair of instances has a ww conflict whatever the
	// parameters (the "simplest approach" materialization of §II-B).
	for _, wp := range p.Writes() {
		if !wp.Fixed {
			continue
		}
		for _, wq := range q.Writes() {
			if wq.Fixed && canCollide(wp, wq) {
				return true
			}
		}
	}
	for _, wp := range p.Writes() {
		if !sameRowVar(wp, ra) {
			continue
		}
		for _, wq := range q.Writes() {
			if !sameRowVar(wq, wb) {
				continue
			}
			if canCollide(wp, wq) {
				return true
			}
		}
	}
	return false
}

// sameRowVar reports whether access w addresses a row determined by the
// same program parameter as access a — i.e. within any one instance, if
// a touches row r of its table, w touches the row selected by the same
// parameter value. (w may be on a different table: what matters is that
// the parameter values coincide, e.g. Conflict[x] alongside a read of
// Saving[x].)
func sameRowVar(w, a Access) bool {
	return w.Param == a.Param && w.Fixed == a.Fixed
}

// computeEdge adds the edge p→q (p ≠ q or self-edge) if any conflict
// exists in that direction.
// Self-edges (p == q) model two instances of the same program
// conflicting; they participate in cycles and can, for mixes other than
// SmallBank, even be vulnerable, so they are computed like any other.
func (g *Graph) computeEdge(p, q *Program) {
	var conflicts []Conflict
	vulnerable := false
	for i, a := range p.Accesses {
		for j, b := range q.Accesses {
			if !canCollide(a, b) {
				continue
			}
			switch {
			case a.Kind != Write && b.Kind == Write:
				c := Conflict{Type: RW, FromAccess: i, ToAccess: j}
				c.Shielded = shieldedRW(p, a, q, b)
				if !c.Shielded {
					vulnerable = true
				}
				conflicts = append(conflicts, c)
			case a.Kind == Write && b.Kind == Write:
				conflicts = append(conflicts, Conflict{Type: WW, FromAccess: i, ToAccess: j})
			case a.Kind == Write && b.Kind != Write:
				conflicts = append(conflicts, Conflict{Type: WR, FromAccess: i, ToAccess: j})
			}
		}
	}
	if len(conflicts) == 0 {
		return
	}
	g.edges[p.Name+"->"+q.Name] = &Edge{
		From: p.Name, To: q.Name, Vulnerable: vulnerable, Conflicts: conflicts,
	}
}

// Programs returns the program names in sorted order.
func (g *Graph) Programs() []string {
	out := make([]string, len(g.order))
	copy(out, g.order)
	return out
}

// Program returns the named program, or nil.
func (g *Graph) Program(name string) *Program { return g.programs[name] }

// Edges returns all edges sorted by id.
func (g *Graph) Edges() []*Edge {
	ids := make([]string, 0, len(g.edges))
	for id := range g.edges {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*Edge, len(ids))
	for i, id := range ids {
		out[i] = g.edges[id]
	}
	return out
}

// Edge returns the edge from→to, or nil.
func (g *Graph) Edge(from, to string) *Edge { return g.edges[from+"->"+to] }

// VulnerableEdges returns the vulnerable edges sorted by id.
func (g *Graph) VulnerableEdges() []*Edge {
	var out []*Edge
	for _, e := range g.Edges() {
		if e.Vulnerable {
			out = append(out, e)
		}
	}
	return out
}

// digraph lowers the SDG to a plain digraph over program names.
func (g *Graph) digraph() *graph.Digraph {
	d := graph.New()
	for _, n := range g.order {
		d.AddNode(n)
	}
	for _, e := range g.edges {
		d.AddEdge(e.From, e.To)
	}
	return d
}

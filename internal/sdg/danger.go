package sdg

import (
	"sort"
)

// DangerousStructure is the pattern of Fekete et al.: two consecutive
// vulnerable edges In: P→Q and Out: Q→R that lie on a cycle of the SDG
// (the cycle's remaining edges may be of any kind; P and R may be the
// same program). Q is the pivot. If the SDG of a mix has no dangerous
// structure, every execution under SI is serializable.
type DangerousStructure struct {
	Pivot string
	In    *Edge // vulnerable P→Q
	Out   *Edge // vulnerable Q→R
	// Cycle is a witness cycle containing the two edges, as a node
	// sequence starting and ending at P.
	Cycle []string
}

// DangerousStructures enumerates all dangerous structures of the graph,
// sorted by (pivot, in, out) for determinism.
func (g *Graph) DangerousStructures() []DangerousStructure {
	d := g.digraph()
	var out []DangerousStructure
	for _, in := range g.VulnerableEdges() {
		for _, outE := range g.VulnerableEdges() {
			if in.To != outE.From {
				continue
			}
			p, q, r := in.From, in.To, outE.To
			var cycle []string
			switch {
			case r == p:
				// The two vulnerable edges already form the cycle.
				cycle = []string{p, q, r}
			default:
				back := d.Path(r, p)
				if back == nil {
					continue
				}
				cycle = append([]string{p, q}, back...)
			}
			out = append(out, DangerousStructure{
				Pivot: q, In: in, Out: outE, Cycle: cycle,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pivot != b.Pivot {
			return a.Pivot < b.Pivot
		}
		if a.In.ID() != b.In.ID() {
			return a.In.ID() < b.In.ID()
		}
		return a.Out.ID() < b.Out.ID()
	})
	return out
}

// IsSafe reports whether the mix is SI-safe: no dangerous structure, so
// by the main theorem of [FLOOS05] every execution on an SI platform is
// serializable.
func (g *Graph) IsSafe() bool { return len(g.DangerousStructures()) == 0 }

// Pivots returns the distinct pivot programs of all dangerous
// structures, sorted. (Fekete's PODS 2005 mixed-isolation result runs
// exactly these under 2PL.)
func (g *Graph) Pivots() []string {
	set := map[string]bool{}
	for _, ds := range g.DangerousStructures() {
		set[ds.Pivot] = true
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// edgePair is an unordered id pair used during cover search.
type edgeSet map[string]bool

// coversAll reports whether neutralizing the edges in s removes every
// dangerous structure: each structure needs at least one of its two
// vulnerable edges in s.
func coversAll(structures []DangerousStructure, s edgeSet) bool {
	for _, ds := range structures {
		if !s[ds.In.ID()] && !s[ds.Out.ID()] {
			return false
		}
	}
	return true
}

// MinimalFixSets returns all minimum-cardinality sets of vulnerable
// edges whose neutralization removes every dangerous structure. Choosing
// such a set is NP-hard in general (Jorwekar et al., VLDB 2007); the
// exact subset search here is exponential in the number of vulnerable
// edges participating in dangerous structures, which is small for
// real program mixes (2 for SmallBank). For larger inputs use
// GreedyFixSet.
func (g *Graph) MinimalFixSets() [][]string {
	structures := g.DangerousStructures()
	if len(structures) == 0 {
		return [][]string{{}}
	}
	// Candidate edges: only those participating in a dangerous pair.
	candSet := map[string]bool{}
	for _, ds := range structures {
		candSet[ds.In.ID()] = true
		candSet[ds.Out.ID()] = true
	}
	cands := make([]string, 0, len(candSet))
	for id := range candSet {
		cands = append(cands, id)
	}
	sort.Strings(cands)

	for size := 1; size <= len(cands); size++ {
		var results [][]string
		idx := make([]int, size)
		var rec func(start, depth int)
		rec = func(start, depth int) {
			if depth == size {
				s := edgeSet{}
				for _, i := range idx {
					s[cands[i]] = true
				}
				if coversAll(structures, s) {
					pick := make([]string, size)
					for j, i := range idx {
						pick[j] = cands[i]
					}
					results = append(results, pick)
				}
				return
			}
			for i := start; i < len(cands); i++ {
				idx[depth] = i
				rec(i+1, depth+1)
			}
		}
		rec(0, 0)
		if len(results) > 0 {
			return results
		}
	}
	return nil
}

// GreedyFixSet returns a (not necessarily minimum) fix set by repeatedly
// taking the vulnerable edge covering the most remaining dangerous
// structures. Deterministic tie-break by edge id.
func (g *Graph) GreedyFixSet() []string {
	remaining := g.DangerousStructures()
	var picked []string
	for len(remaining) > 0 {
		counts := map[string]int{}
		for _, ds := range remaining {
			counts[ds.In.ID()]++
			counts[ds.Out.ID()]++
		}
		best, bestN := "", -1
		ids := make([]string, 0, len(counts))
		for id := range counts {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			if counts[id] > bestN {
				best, bestN = id, counts[id]
			}
		}
		picked = append(picked, best)
		var next []DangerousStructure
		for _, ds := range remaining {
			if ds.In.ID() != best && ds.Out.ID() != best {
				next = append(next, ds)
			}
		}
		remaining = next
	}
	sort.Strings(picked)
	return picked
}

// AllVulnerableEdgeIDs returns every vulnerable edge id (the
// Materialize/PromoteALL strategies neutralize all of them without SDG
// analysis).
func (g *Graph) AllVulnerableEdgeIDs() []string {
	var out []string
	for _, e := range g.VulnerableEdges() {
		out = append(out, e.ID())
	}
	return out
}

// Package sdg implements the Static Dependency Graph theory of Fekete,
// Liarokapis, O'Neil, O'Neil and Shasha ("Making snapshot isolation
// serializable", TODS 2005) that the paper's program-modification
// strategies are built on: programs abstracted as parameterized
// read/write sets, conflict edges, vulnerable edges (rw-antidependencies
// not shadowed by a write-write conflict), dangerous structures (two
// consecutive vulnerable edges on a cycle), and the two repair
// techniques — materialization and promotion — that make chosen edges
// non-vulnerable.
//
// The paper's analysis of SmallBank (§III-C) is reproduced exactly by
// this package; internal/smallbank declares the benchmark's programs in
// this model and the figure-1/2/3 experiments render the results.
package sdg

import (
	"fmt"
	"sort"
	"strings"
)

// AccessKind classifies one data access of a program.
type AccessKind uint8

// Access kinds. PredRead marks predicate evaluations whose result set a
// writer could change; promotion cannot repair conflicts against them
// (§II-C: "promotion is less general than materialization").
const (
	Read AccessKind = iota
	Write
	PredRead
)

// String names the kind.
func (k AccessKind) String() string {
	switch k {
	case Read:
		return "r"
	case Write:
		return "w"
	case PredRead:
		return "pr"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Access is one parameterized data access: a program touches the row(s)
// of Table selected by the program parameter Param, reading or writing
// the given columns. Two accesses from different program instances can
// collide exactly when their parameters can take equal values (always,
// in this model) — but accesses *within* one program instance sharing
// the same Param name are guaranteed to address the same row, which is
// what the write-write shielding argument relies on.
type Access struct {
	Table string
	// Cols is the set of columns touched; conflicts require overlap.
	Cols []string
	// Param is the program parameter that selects the row ("x", "N1").
	// Accesses with equal Param within one program address the same row.
	Param string
	// Fixed marks an access to one specific constant row (the "simplest
	// approach" to materialization in §II-B); all instances of all
	// programs with a Fixed access to the same table/param collide.
	Fixed bool
	Kind  AccessKind
}

// overlaps reports whether the column sets intersect. An empty column
// set means "whole row" and overlaps everything.
func overlaps(a, b []string) bool {
	if len(a) == 0 || len(b) == 0 {
		return true
	}
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// String renders the access compactly, e.g. "r Saving.Balance[x]".
func (a Access) String() string {
	cols := strings.Join(a.Cols, ",")
	if cols == "" {
		cols = "*"
	}
	p := a.Param
	if a.Fixed {
		p = "#" + p
	}
	return fmt.Sprintf("%s %s.%s[%s]", a.Kind, a.Table, cols, p)
}

// Program is one transaction program of the application mix.
type Program struct {
	Name     string
	Accesses []Access
}

// ReadOnly reports whether the program performs no writes.
func (p *Program) ReadOnly() bool {
	for _, a := range p.Accesses {
		if a.Kind == Write {
			return false
		}
	}
	return true
}

// Writes returns the program's write accesses.
func (p *Program) Writes() []Access {
	var out []Access
	for _, a := range p.Accesses {
		if a.Kind == Write {
			out = append(out, a)
		}
	}
	return out
}

// Reads returns the program's read and predicate-read accesses.
func (p *Program) Reads() []Access {
	var out []Access
	for _, a := range p.Accesses {
		if a.Kind != Write {
			out = append(out, a)
		}
	}
	return out
}

// TablesWritten lists the distinct tables the program writes, sorted.
// (Table I of the paper summarises strategies by exactly this.)
func (p *Program) TablesWritten() []string {
	set := map[string]bool{}
	for _, a := range p.Writes() {
		set[a.Table] = true
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Clone deep-copies the program.
func (p *Program) Clone() *Program {
	c := &Program{Name: p.Name, Accesses: make([]Access, len(p.Accesses))}
	copy(c.Accesses, p.Accesses)
	for i := range c.Accesses {
		cols := make([]string, len(p.Accesses[i].Cols))
		copy(cols, p.Accesses[i].Cols)
		c.Accesses[i].Cols = cols
	}
	return c
}

// hasWrite reports whether the program contains a write access matching
// table/cols/param (used to avoid duplicating modifications).
func (p *Program) hasWrite(table string, cols []string, param string, fixed bool) bool {
	for _, a := range p.Accesses {
		if a.Kind == Write && a.Table == table && a.Param == param && a.Fixed == fixed && overlaps(a.Cols, cols) {
			return true
		}
	}
	return false
}

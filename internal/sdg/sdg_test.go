package sdg

import (
	"reflect"
	"strings"
	"testing"

	"sicost/internal/core"
)

// smallBankPrograms builds the paper's §III transaction mix in the SDG
// model. This is intentionally duplicated from internal/smallbank so the
// theory package is validated standalone against the paper's Figure 1.
func smallBankPrograms() []*Program {
	bal := &Program{Name: "Bal", Accesses: []Access{
		{Table: "Account", Cols: []string{"CustomerID"}, Param: "N", Kind: Read},
		{Table: "Saving", Cols: []string{"Balance"}, Param: "x", Kind: Read},
		{Table: "Checking", Cols: []string{"Balance"}, Param: "x", Kind: Read},
	}}
	dc := &Program{Name: "DC", Accesses: []Access{
		{Table: "Account", Cols: []string{"CustomerID"}, Param: "N", Kind: Read},
		{Table: "Checking", Cols: []string{"Balance"}, Param: "x", Kind: Read},
		{Table: "Checking", Cols: []string{"Balance"}, Param: "x", Kind: Write},
	}}
	ts := &Program{Name: "TS", Accesses: []Access{
		{Table: "Account", Cols: []string{"CustomerID"}, Param: "N", Kind: Read},
		{Table: "Saving", Cols: []string{"Balance"}, Param: "x", Kind: Read},
		{Table: "Saving", Cols: []string{"Balance"}, Param: "x", Kind: Write},
	}}
	amg := &Program{Name: "Amg", Accesses: []Access{
		{Table: "Account", Cols: []string{"CustomerID"}, Param: "N1", Kind: Read},
		{Table: "Account", Cols: []string{"CustomerID"}, Param: "N2", Kind: Read},
		{Table: "Saving", Cols: []string{"Balance"}, Param: "x1", Kind: Read},
		{Table: "Checking", Cols: []string{"Balance"}, Param: "x1", Kind: Read},
		{Table: "Saving", Cols: []string{"Balance"}, Param: "x1", Kind: Write},
		{Table: "Checking", Cols: []string{"Balance"}, Param: "x1", Kind: Write},
		{Table: "Checking", Cols: []string{"Balance"}, Param: "x2", Kind: Read},
		{Table: "Checking", Cols: []string{"Balance"}, Param: "x2", Kind: Write},
	}}
	wc := &Program{Name: "WC", Accesses: []Access{
		{Table: "Account", Cols: []string{"CustomerID"}, Param: "N", Kind: Read},
		{Table: "Saving", Cols: []string{"Balance"}, Param: "x", Kind: Read},
		{Table: "Checking", Cols: []string{"Balance"}, Param: "x", Kind: Read},
		{Table: "Checking", Cols: []string{"Balance"}, Param: "x", Kind: Write},
	}}
	return []*Program{bal, dc, ts, amg, wc}
}

func vulnIDs(g *Graph) []string {
	var out []string
	for _, e := range g.VulnerableEdges() {
		out = append(out, e.ID())
	}
	return out
}

// TestSmallBankSDGMatchesFigure1 reproduces the paper's §III-C analysis.
func TestSmallBankSDGMatchesFigure1(t *testing.T) {
	g := MustNew(smallBankPrograms()...)

	want := []string{"Bal->Amg", "Bal->DC", "Bal->TS", "Bal->WC", "WC->TS"}
	if got := vulnIDs(g); !reflect.DeepEqual(got, want) {
		t.Fatalf("vulnerable edges = %v, want %v", got, want)
	}

	// WC->Amg must exist but be shielded (the paper's subtle case).
	e := g.Edge("WC", "Amg")
	if e == nil {
		t.Fatal("WC->Amg edge missing")
	}
	if e.Vulnerable {
		t.Fatal("WC->Amg must not be vulnerable: Amg's Saving write is shadowed by the Checking ww conflict")
	}
	hasShieldedRW := false
	for _, c := range e.Conflicts {
		if c.Type == RW && c.Shielded {
			hasShieldedRW = true
		}
	}
	if !hasShieldedRW {
		t.Fatal("WC->Amg should contain a shielded rw conflict")
	}

	// Exactly one dangerous structure: Bal -> WC -> TS.
	structures := g.DangerousStructures()
	if len(structures) != 1 {
		t.Fatalf("dangerous structures = %d, want 1: %+v", len(structures), structures)
	}
	ds := structures[0]
	if ds.Pivot != "WC" || ds.In.ID() != "Bal->WC" || ds.Out.ID() != "WC->TS" {
		t.Fatalf("dangerous structure = pivot %s, %s, %s", ds.Pivot, ds.In.ID(), ds.Out.ID())
	}
	if g.IsSafe() {
		t.Fatal("unmodified SmallBank must be unsafe")
	}
	if got := g.Pivots(); !reflect.DeepEqual(got, []string{"WC"}) {
		t.Fatalf("pivots = %v", got)
	}
}

func TestMinimalFixSetsAreTheTwoOptions(t *testing.T) {
	g := MustNew(smallBankPrograms()...)
	sets := g.MinimalFixSets()
	// Either neutralize Bal->WC (Option BW) or WC->TS (Option WT).
	want := [][]string{{"Bal->WC"}, {"WC->TS"}}
	if !reflect.DeepEqual(sets, want) {
		t.Fatalf("fix sets = %v, want %v", sets, want)
	}
	greedy := g.GreedyFixSet()
	if len(greedy) != 1 {
		t.Fatalf("greedy = %v", greedy)
	}
}

func TestOptionWTPromotion(t *testing.T) {
	progs := smallBankPrograms()
	g := MustNew(progs...)
	fixed, mods, err := Neutralize(progs, g.Edge("WC", "TS"), PromoteUpdate)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one modification: an identity write on Saving in WC.
	if len(mods) != 1 || mods[0].Program != "WC" || mods[0].Add.Table != "Saving" || mods[0].Add.Kind != Write {
		t.Fatalf("mods = %+v", mods)
	}
	g2 := MustNew(fixed...)
	if !g2.IsSafe() {
		t.Fatal("PromoteWT-upd must make the mix safe")
	}
	// Balance stays read-only under Option WT (paper Table I).
	for _, p := range fixed {
		if p.Name == "Bal" && !p.ReadOnly() {
			t.Fatal("Option WT must not touch Balance")
		}
	}
	// WC->TS edge is no longer vulnerable but still exists (now ww too).
	if e := g2.Edge("WC", "TS"); e == nil || e.Vulnerable {
		t.Fatalf("WC->TS after promotion: %+v", e)
	}
}

func TestOptionWTMaterialization(t *testing.T) {
	progs := smallBankPrograms()
	g := MustNew(progs...)
	fixed, mods, err := Neutralize(progs, g.Edge("WC", "TS"), Materialize)
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != 2 {
		t.Fatalf("mods = %+v", mods)
	}
	for _, m := range mods {
		if m.Add.Table != ConflictTable {
			t.Fatalf("materialization must write the %s table: %+v", ConflictTable, m)
		}
	}
	g2 := MustNew(fixed...)
	if !g2.IsSafe() {
		t.Fatal("MaterializeWT must make the mix safe")
	}
}

func TestOptionBWPromotion(t *testing.T) {
	progs := smallBankPrograms()
	g := MustNew(progs...)
	fixed, mods, err := Neutralize(progs, g.Edge("Bal", "WC"), PromoteUpdate)
	if err != nil {
		t.Fatal(err)
	}
	// One identity update on Checking in Bal.
	if len(mods) != 1 || mods[0].Program != "Bal" || mods[0].Add.Table != "Checking" {
		t.Fatalf("mods = %+v", mods)
	}
	g2 := MustNew(fixed...)
	if !g2.IsSafe() {
		t.Fatal("PromoteBW-upd must make the mix safe")
	}
	// The paper's Fig 3(b): Balance's other outgoing edges change too —
	// Bal->DC and Bal->Amg become non-vulnerable, Bal->TS stays
	// vulnerable (but is harmless: TS has no vulnerable out-edge).
	if e := g2.Edge("Bal", "DC"); e == nil || e.Vulnerable {
		t.Fatalf("Bal->DC after BW promotion: %+v", e)
	}
	if e := g2.Edge("Bal", "Amg"); e == nil || e.Vulnerable {
		t.Fatalf("Bal->Amg after BW promotion: %+v", e)
	}
	if e := g2.Edge("Bal", "TS"); e == nil || !e.Vulnerable {
		t.Fatalf("Bal->TS after BW promotion: %+v", e)
	}
	// Balance is no longer read-only.
	for _, p := range fixed {
		if p.Name == "Bal" && p.ReadOnly() {
			t.Fatal("Option BW turns Balance into an updater")
		}
	}
}

func TestOptionBWMaterialization(t *testing.T) {
	progs := smallBankPrograms()
	g := MustNew(progs...)
	fixed, _, err := Neutralize(progs, g.Edge("Bal", "WC"), Materialize)
	if err != nil {
		t.Fatal(err)
	}
	g2 := MustNew(fixed...)
	if !g2.IsSafe() {
		t.Fatal("MaterializeBW must make the mix safe")
	}
	// Unlike promotion, materializing BW leaves Bal->DC vulnerable (DC
	// does not write Conflict); safety comes from DC having no
	// vulnerable out-edge.
	if e := g2.Edge("Bal", "DC"); e == nil || !e.Vulnerable {
		t.Fatalf("Bal->DC after BW materialization: %+v", e)
	}
}

func TestNeutralizeAllMatchesTable1(t *testing.T) {
	progs := smallBankPrograms()

	// MaterializeALL: a Conflict write in every program; Amg gets two.
	matAll, mods, err := NeutralizeAll(progs, Materialize)
	if err != nil {
		t.Fatal(err)
	}
	g := MustNew(matAll...)
	if !g.IsSafe() || len(g.VulnerableEdges()) != 0 {
		t.Fatal("MaterializeALL must remove every vulnerable edge")
	}
	conflictWrites := map[string]int{}
	for _, p := range matAll {
		for _, a := range p.Writes() {
			if a.Table == ConflictTable {
				conflictWrites[p.Name]++
			}
		}
	}
	want := map[string]int{"Bal": 1, "DC": 1, "TS": 1, "WC": 1, "Amg": 2}
	if !reflect.DeepEqual(conflictWrites, want) {
		t.Fatalf("conflict writes = %v, want %v (mods %+v)", conflictWrites, want, mods)
	}

	// PromoteALL: identity updates on Saving+Checking in Bal, Saving in
	// WC; others untouched.
	promAll, _, err := NeutralizeAll(progs, PromoteUpdate)
	if err != nil {
		t.Fatal(err)
	}
	g2 := MustNew(promAll...)
	if !g2.IsSafe() || len(g2.VulnerableEdges()) != 0 {
		t.Fatal("PromoteALL must remove every vulnerable edge")
	}
	byName := map[string]*Program{}
	for _, p := range promAll {
		byName[p.Name] = p
	}
	if got := byName["Bal"].TablesWritten(); !reflect.DeepEqual(got, []string{"Checking", "Saving"}) {
		t.Fatalf("PromoteALL Bal writes %v", got)
	}
	if got := byName["WC"].TablesWritten(); !reflect.DeepEqual(got, []string{"Checking", "Saving"}) {
		t.Fatalf("PromoteALL WC writes %v", got)
	}
	for _, n := range []string{"DC", "TS", "Amg"} {
		orig := MustNew(progs...).Program(n).TablesWritten()
		if got := byName[n].TablesWritten(); !reflect.DeepEqual(got, orig) {
			t.Fatalf("PromoteALL modified %s: %v", n, got)
		}
	}
}

func TestPromoteSFUSoundness(t *testing.T) {
	if PromoteSFU.SoundOn(core.PlatformPostgres) {
		t.Fatal("sfu promotion is not sound on PostgreSQL (§II-C)")
	}
	if !PromoteSFU.SoundOn(core.PlatformCommercial) {
		t.Fatal("sfu promotion is sound on the commercial platform")
	}
	if !Materialize.SoundOn(core.PlatformPostgres) || !PromoteUpdate.SoundOn(core.PlatformCommercial) {
		t.Fatal("materialize/promote-upd are sound everywhere")
	}
}

func TestPromotionRejectedForPredicateReads(t *testing.T) {
	p := &Program{Name: "P", Accesses: []Access{
		{Table: "T", Cols: []string{"V"}, Param: "x", Kind: PredRead},
	}}
	q := &Program{Name: "Q", Accesses: []Access{
		{Table: "T", Cols: []string{"V"}, Param: "y", Kind: Write},
		{Table: "U", Cols: []string{"V"}, Param: "y", Kind: Read},
	}}
	g := MustNew(p, q)
	e := g.Edge("P", "Q")
	if e == nil || !e.Vulnerable {
		t.Fatal("setup: P->Q should be vulnerable")
	}
	if _, _, err := Neutralize([]*Program{p, q}, e, PromoteUpdate); err == nil {
		t.Fatal("promotion against a predicate read must be rejected")
	}
	if _, _, err := Neutralize([]*Program{p, q}, e, Materialize); err != nil {
		t.Fatalf("materialization must handle predicate reads: %v", err)
	}
}

func TestMaterializeFixedRowCausesCrossParameterConflicts(t *testing.T) {
	progs := smallBankPrograms()
	g := MustNew(progs...)
	fixed, mods, err := MaterializeFixedRow(progs, g.Edge("WC", "TS"))
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != 2 {
		t.Fatalf("mods = %+v", mods)
	}
	g2 := MustNew(fixed...)
	if !g2.IsSafe() {
		t.Fatal("fixed-row materialization must still be safe")
	}
	// The fixed row makes ALL instances of WC and TS conflict, even for
	// different customers — visible as a ww conflict between the two
	// programs' fixed accesses.
	e := g2.Edge("WC", "TS")
	foundFixedWW := false
	for _, c := range e.Conflicts {
		if c.Type == WW {
			a := g2.Program("WC").Accesses[c.FromAccess]
			b := g2.Program("TS").Accesses[c.ToAccess]
			if a.Fixed && b.Fixed {
				foundFixedWW = true
			}
		}
	}
	if !foundFixedWW {
		t.Fatal("fixed-row ww conflict missing")
	}
}

func TestSelfEdgeVulnerabilityPossible(t *testing.T) {
	// A program reading A[x] and writing A[y] (different parameters) is
	// vulnerable against itself; with a cycle it forms a dangerous
	// structure with itself as pivot.
	p := &Program{Name: "P", Accesses: []Access{
		{Table: "A", Cols: []string{"V"}, Param: "x", Kind: Read},
		{Table: "A", Cols: []string{"V"}, Param: "y", Kind: Write},
	}}
	g := MustNew(p)
	e := g.Edge("P", "P")
	if e == nil || !e.Vulnerable {
		t.Fatalf("self-edge = %+v, want vulnerable", e)
	}
	if g.IsSafe() {
		t.Fatal("self-vulnerable cycle must be dangerous")
	}
}

func TestDuplicateProgramNamesRejected(t *testing.T) {
	p := &Program{Name: "P"}
	if _, err := New(p, p); err == nil {
		t.Fatal("duplicate names accepted")
	}
}

func TestRenderOutputs(t *testing.T) {
	g := MustNew(smallBankPrograms()...)
	dot := g.ToDOT("smallbank")
	for _, want := range []string{"digraph", `"Bal" -> "WC" [style=dashed]`, `"WC" -> "TS" [style=dashed]`, "lightgrey"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	desc := g.Describe()
	for _, want := range []string{"Dangerous structures (1):", "pivot WC", "Minimal fix sets", "Bal->WC", "WC->TS"} {
		if !strings.Contains(desc, want) {
			t.Fatalf("Describe missing %q:\n%s", want, desc)
		}
	}

	// A safe mix reports that every execution is serializable.
	safe, _, err := NeutralizeAll(smallBankPrograms(), PromoteUpdate)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(MustNew(safe...).Describe(), "serializable") {
		t.Fatal("safe mix description missing serializability statement")
	}
}

func TestAccessAndTechniqueStrings(t *testing.T) {
	a := Access{Table: "Saving", Cols: []string{"Balance"}, Param: "x", Kind: Read}
	if a.String() != "r Saving.Balance[x]" {
		t.Fatalf("Access.String = %q", a.String())
	}
	f := Access{Table: "Conflict", Cols: []string{"Value"}, Param: "0", Fixed: true, Kind: Write}
	if f.String() != "w Conflict.Value[#0]" {
		t.Fatalf("fixed Access.String = %q", f.String())
	}
	if Materialize.String() != "materialize" || PromoteUpdate.String() != "promote-upd" || PromoteSFU.String() != "promote-sfu" {
		t.Fatal("technique names changed")
	}
	if Read.String() != "r" || Write.String() != "w" || PredRead.String() != "pr" {
		t.Fatal("access kind names changed")
	}
	if RW.String() != "rw" || WW.String() != "ww" || WR.String() != "wr" {
		t.Fatal("conflict type names changed")
	}
}

func TestSortModifications(t *testing.T) {
	mods := []Modification{
		{Program: "Z", Add: Access{Table: "B", Param: "y"}},
		{Program: "A", Add: Access{Table: "B", Param: "x"}},
		{Program: "A", Add: Access{Table: "A", Param: "z"}},
	}
	SortModifications(mods)
	if mods[0].Program != "A" || mods[0].Add.Table != "A" || mods[2].Program != "Z" {
		t.Fatalf("sorted = %+v", mods)
	}
}

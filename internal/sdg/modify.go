package sdg

import (
	"fmt"
	"sort"

	"sicost/internal/core"
)

// Technique is one of the paper's three ways to make an edge
// non-vulnerable (§II-B, §II-C).
type Technique uint8

// Techniques.
const (
	// Materialize introduces updates of a dedicated Conflict table into
	// both programs of the edge, parameterized so the write-write
	// conflict arises exactly when the read-write conflict would.
	Materialize Technique = iota
	// PromoteUpdate adds an identity update (SET col = col) on the read
	// item to the source program of the edge.
	PromoteUpdate
	// PromoteSFU replaces the vulnerable SELECT by SELECT...FOR UPDATE.
	// Only sound on platforms where sfu participates in write-conflict
	// detection (the commercial platform; §II-C shows PostgreSQL's sfu
	// admits an interleaving that keeps the edge vulnerable).
	PromoteSFU
)

// String names the technique.
func (t Technique) String() string {
	switch t {
	case Materialize:
		return "materialize"
	case PromoteUpdate:
		return "promote-upd"
	case PromoteSFU:
		return "promote-sfu"
	default:
		return fmt.Sprintf("technique(%d)", uint8(t))
	}
}

// SoundOn reports whether the technique actually removes vulnerability
// on the given platform.
func (t Technique) SoundOn(p core.Platform) bool {
	if t == PromoteSFU {
		return p == core.PlatformCommercial
	}
	return true
}

// Modification describes one statement added to one program.
type Modification struct {
	Program   string
	Technique Technique
	Add       Access
	// Edge is the edge id this modification serves.
	Edge string
}

// ConflictTable is the dedicated table name used by materialization, as
// in the paper.
const ConflictTable = "Conflict"

// Neutralize applies the technique to one edge of the program mix and
// returns the modified mix (a deep copy; inputs are untouched) plus the
// modifications made. It fails when the technique cannot repair the edge
// (promotion against a predicate-read conflict, or no vulnerable
// conflict present).
func Neutralize(programs []*Program, edge *Edge, tech Technique) ([]*Program, []Modification, error) {
	byName := make(map[string]*Program, len(programs))
	out := make([]*Program, len(programs))
	for i, p := range programs {
		c := p.Clone()
		out[i] = c
		byName[p.Name] = c
	}
	from, to := byName[edge.From], byName[edge.To]
	if from == nil || to == nil {
		return nil, nil, fmt.Errorf("sdg: edge %s references unknown programs", edge.ID())
	}
	// The original (unmodified) programs define the conflicting accesses.
	origFrom, origTo := from.Clone(), to.Clone()

	var mods []Modification
	add := func(p *Program, a Access, edgeID string) {
		if p.hasWrite(a.Table, a.Cols, a.Param, a.Fixed) {
			return
		}
		p.Accesses = append(p.Accesses, a)
		mods = append(mods, Modification{Program: p.Name, Technique: tech, Add: a, Edge: edgeID})
	}

	repaired := false
	for _, c := range edge.Conflicts {
		if c.Type != RW || c.Shielded {
			continue
		}
		read := origFrom.Accesses[c.FromAccess]
		write := origTo.Accesses[c.ToAccess]
		switch tech {
		case Materialize:
			add(from, Access{
				Table: ConflictTable, Cols: []string{"Value"},
				Param: read.Param, Fixed: read.Fixed, Kind: Write,
			}, edge.ID())
			add(to, Access{
				Table: ConflictTable, Cols: []string{"Value"},
				Param: write.Param, Fixed: write.Fixed, Kind: Write,
			}, edge.ID())
		case PromoteUpdate, PromoteSFU:
			if read.Kind == PredRead {
				return nil, nil, fmt.Errorf(
					"sdg: cannot promote edge %s: conflict on predicate read %s (materialize instead)",
					edge.ID(), read)
			}
			add(from, Access{
				Table: read.Table, Cols: write.Cols,
				Param: read.Param, Fixed: read.Fixed, Kind: Write,
			}, edge.ID())
		}
		repaired = true
	}
	if !repaired {
		return nil, nil, fmt.Errorf("sdg: edge %s has no unshielded rw conflict to repair", edge.ID())
	}
	return out, mods, nil
}

// MaterializeFixedRow is the "simplest approach" of §II-B: both programs
// update one constant row of the Conflict table, introducing contention
// even between instances with unrelated parameters. Used by the ablation
// experiment that quantifies why the paper parameterizes the conflict
// row.
func MaterializeFixedRow(programs []*Program, edge *Edge) ([]*Program, []Modification, error) {
	byName := make(map[string]*Program, len(programs))
	out := make([]*Program, len(programs))
	for i, p := range programs {
		c := p.Clone()
		out[i] = c
		byName[p.Name] = c
	}
	from, to := byName[edge.From], byName[edge.To]
	if from == nil || to == nil {
		return nil, nil, fmt.Errorf("sdg: edge %s references unknown programs", edge.ID())
	}
	var mods []Modification
	fixed := Access{Table: ConflictTable, Cols: []string{"Value"}, Param: "0", Fixed: true, Kind: Write}
	for _, p := range []*Program{from, to} {
		if p.hasWrite(fixed.Table, fixed.Cols, fixed.Param, true) {
			continue
		}
		p.Accesses = append(p.Accesses, fixed)
		mods = append(mods, Modification{Program: p.Name, Technique: Materialize, Add: fixed, Edge: edge.ID()})
	}
	return out, mods, nil
}

// NeutralizeAll repeatedly neutralizes vulnerable edges with the given
// technique until none remain — the MaterializeALL / PromoteALL
// strategies that skip SDG analysis. It returns the modified mix and all
// modifications.
func NeutralizeAll(programs []*Program, tech Technique) ([]*Program, []Modification, error) {
	cur := programs
	var all []Modification
	for iter := 0; ; iter++ {
		if iter > 64 {
			return nil, nil, fmt.Errorf("sdg: NeutralizeAll did not converge")
		}
		g, err := New(cur...)
		if err != nil {
			return nil, nil, err
		}
		vuln := g.VulnerableEdges()
		if len(vuln) == 0 {
			return cur, all, nil
		}
		next, mods, err := Neutralize(cur, vuln[0], tech)
		if err != nil {
			return nil, nil, err
		}
		cur = next
		all = append(all, mods...)
	}
}

// SortModifications orders modifications by (program, table, param) for
// deterministic output.
func SortModifications(mods []Modification) {
	sort.Slice(mods, func(i, j int) bool {
		a, b := mods[i], mods[j]
		if a.Program != b.Program {
			return a.Program < b.Program
		}
		if a.Add.Table != b.Add.Table {
			return a.Add.Table < b.Add.Table
		}
		return a.Add.Param < b.Add.Param
	})
}

package sdg

import (
	"fmt"
	"strings"
)

// ToDOT renders the SDG in Graphviz dot format: dashed edges are
// vulnerable (the paper's convention), shaded nodes are update programs,
// and self-loops are included only when vulnerable to keep the diagram
// close to the paper's figures.
func (g *Graph) ToDOT(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=LR;\n")
	for _, name := range g.Programs() {
		p := g.Program(name)
		fill := "white"
		if !p.ReadOnly() {
			fill = "lightgrey"
		}
		fmt.Fprintf(&b, "  %q [style=filled, fillcolor=%s, shape=ellipse];\n", name, fill)
	}
	for _, e := range g.Edges() {
		if e.From == e.To && !e.Vulnerable {
			continue
		}
		style := "solid"
		if e.Vulnerable {
			style = "dashed"
		}
		fmt.Fprintf(&b, "  %q -> %q [style=%s];\n", e.From, e.To, style)
	}
	b.WriteString("}\n")
	return b.String()
}

// Describe renders a text report of the graph: programs, edges with
// vulnerability flags, dangerous structures, and minimal fix sets. This
// is the output of `sibench -exp fig1` and of cmd/sdgtool.
func (g *Graph) Describe() string {
	var b strings.Builder
	b.WriteString("Programs:\n")
	for _, name := range g.Programs() {
		p := g.Program(name)
		kind := "update"
		if p.ReadOnly() {
			kind = "read-only"
		}
		fmt.Fprintf(&b, "  %-4s (%s)\n", name, kind)
		for _, a := range p.Accesses {
			fmt.Fprintf(&b, "       %s\n", a)
		}
	}
	b.WriteString("Edges (dashed = vulnerable):\n")
	for _, e := range g.Edges() {
		if e.From == e.To && !e.Vulnerable {
			continue
		}
		mark := "──>"
		if e.Vulnerable {
			mark = "┄┄>"
		}
		types := map[string]bool{}
		for _, c := range e.Conflicts {
			s := c.Type.String()
			if c.Type == RW && c.Shielded {
				s += "(shielded)"
			}
			types[s] = true
		}
		var ts []string
		for t := range types {
			ts = append(ts, t)
		}
		sortStrings(ts)
		fmt.Fprintf(&b, "  %-4s %s %-4s  [%s]\n", e.From, mark, e.To, strings.Join(ts, " "))
	}
	structures := g.DangerousStructures()
	if len(structures) == 0 {
		b.WriteString("Dangerous structures: none — every execution under SI is serializable.\n")
		return b.String()
	}
	fmt.Fprintf(&b, "Dangerous structures (%d):\n", len(structures))
	for _, ds := range structures {
		fmt.Fprintf(&b, "  pivot %-4s : %s ┄┄> %s ┄┄> %s  (cycle %s)\n",
			ds.Pivot, ds.In.From, ds.Pivot, ds.Out.To, strings.Join(ds.Cycle, "→"))
	}
	b.WriteString("Minimal fix sets (neutralize any one set):\n")
	for _, set := range g.MinimalFixSets() {
		fmt.Fprintf(&b, "  {%s}\n", strings.Join(set, ", "))
	}
	return b.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

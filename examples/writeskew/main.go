// Write skew and select-for-update semantics, side by side on several
// engines: plain SI lets the classic "doctors on call" write skew
// commit; SSI and 2PL do not; and the paper's select-for-update
// promotion behaves differently on PostgreSQL and the commercial
// platform (§II-C).
//
//	go run ./examples/writeskew
package main

import (
	"fmt"
	"log"

	"sicost"
	"sicost/internal/core"
)

// oncallSchema: oncall(doctor, on_duty) with the invariant "at least one
// doctor on duty" — enforceable by each transaction alone, broken by
// write skew.
func oncallSchema() *sicost.Schema {
	return &sicost.Schema{
		Name: "oncall",
		Columns: []sicost.Column{
			{Name: "doctor", Kind: sicost.KindString, NotNull: true},
			{Name: "on_duty", Kind: sicost.KindInt, NotNull: true},
		},
		PK: 0,
	}
}

func newDB(mode core.CCMode, platform core.Platform) *sicost.DB {
	db := sicost.Open(sicost.EngineConfig{Mode: mode, Platform: platform})
	if err := db.CreateTable(oncallSchema()); err != nil {
		log.Fatal(err)
	}
	tx := db.Begin()
	for _, d := range []string{"alice", "bob"} {
		if err := tx.Insert("oncall", sicost.Record{sicost.Str(d), sicost.Int(1)}); err != nil {
			log.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	return db
}

// goOffDuty is the transaction each doctor runs: leave duty only if the
// other doctor is still on duty. It returns the first error encountered.
func goOffDuty(tx *sicost.Tx, me, other string) error {
	mine, err := tx.Get("oncall", sicost.Str(me))
	if err != nil {
		return err
	}
	theirs, err := tx.Get("oncall", sicost.Str(other))
	if err != nil {
		return err
	}
	if mine[1].Int64()+theirs[1].Int64() < 2 {
		return fmt.Errorf("%w: someone must stay on duty", sicost.ErrRollback)
	}
	return tx.Update("oncall", sicost.Str(me), sicost.Record{sicost.Str(me), sicost.Int(0)})
}

func onDutyCount(db *sicost.DB) int64 {
	var n int64
	if err := db.ScanLatest("oncall", func(_ sicost.Value, rec sicost.Record) bool {
		n += rec[1].Int64()
		return true
	}); err != nil {
		log.Fatal(err)
	}
	return n
}

func runWriteSkew(label string, mode core.CCMode) {
	db := newDB(mode, sicost.PlatformPostgres)
	defer db.Close()
	chk := sicost.NewChecker()
	db.SetObserver(chk)

	// Both doctors decide to leave at the same moment. Run the two
	// transactions concurrently; under 2PL one blocks, so drive them
	// from goroutines.
	t1 := db.Begin()
	t2 := db.Begin()
	done1, done2 := make(chan error, 1), make(chan error, 1)
	go func() {
		if err := goOffDuty(t1, "alice", "bob"); err != nil {
			t1.Abort()
			done1 <- err
			return
		}
		done1 <- t1.Commit()
	}()
	go func() {
		if err := goOffDuty(t2, "bob", "alice"); err != nil {
			t2.Abort()
			done2 <- err
			return
		}
		done2 <- t2.Commit()
	}()
	err1, err2 := <-done1, <-done2

	left := onDutyCount(db)
	rep := chk.Analyze()
	fmt.Printf("%-9s alice: %-12v bob: %-12v on duty: %d   execution: %s\n",
		label, short(err1), short(err2), left, rep.Classify())
	if left == 0 {
		fmt.Printf("%-9s  -> the invariant is BROKEN: this is write skew\n", "")
	}
}

func runSfu(label string, platform core.Platform) {
	db := newDB(sicost.SnapshotFUW, platform)
	defer db.Close()

	// §II-C interleaving: T select-for-updates the row and commits, then
	// a concurrent U writes it. PostgreSQL allows U; the commercial
	// platform treats the committed sfu like a write and aborts U.
	T := db.Begin()
	U := db.Begin()
	if _, err := T.ReadForUpdate("oncall", sicost.Str("alice")); err != nil {
		log.Fatal(err)
	}
	if err := T.Commit(); err != nil {
		log.Fatal(err)
	}
	err := U.Update("oncall", sicost.Str("alice"), sicost.Record{sicost.Str("alice"), sicost.Int(0)})
	if err == nil {
		err = U.Commit()
	} else {
		U.Abort()
	}
	fmt.Printf("%-11s concurrent writer after committed SELECT FOR UPDATE: %v\n", label, short(err))
}

func short(err error) string {
	if err == nil {
		return "committed"
	}
	if sicost.IsRetriable(err) {
		return "serialization failure"
	}
	return err.Error()
}

func main() {
	fmt.Println("== write skew: 'at least one doctor on duty' ==")
	runWriteSkew("plain SI", sicost.SnapshotFUW)
	runWriteSkew("SSI", sicost.SerializableSI)
	runWriteSkew("2PL", sicost.Strict2PL)

	fmt.Println("\n== select-for-update promotion semantics (§II-C) ==")
	runSfu("PostgreSQL", sicost.PlatformPostgres)
	runSfu("commercial", sicost.PlatformCommercial)
	fmt.Println("\nThis asymmetry is why the paper evaluates PromoteWT-sfu / PromoteBW-sfu")
	fmt.Println("only on the commercial platform: on PostgreSQL, sfu promotion is unsound.")
}

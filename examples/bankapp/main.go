// bankapp is a realistic mini banking service built on the library: a
// fleet of concurrent tellers processes deposits, withdrawals, transfers
// and statements against the SI engine, with the standard retry
// discipline for serialization failures, an SDG-guided promotion that
// keeps the mix serializable, a runtime serializability certificate, and
// a final audit of the money-conservation invariant.
//
//	go run ./examples/bankapp
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"

	"sicost"
)

const (
	accounts   = 200
	tellers    = 8
	opsPer     = 300
	initialBal = 1_000_00 // $1000.00 per account
)

func accountsSchema() *sicost.Schema {
	return &sicost.Schema{
		Name: "accounts",
		Columns: []sicost.Column{
			{Name: "id", Kind: sicost.KindInt, NotNull: true},
			{Name: "balance", Kind: sicost.KindInt, NotNull: true},
			{Name: "ops", Kind: sicost.KindInt, NotNull: true},
		},
		PK: 0,
	}
}

// withRetry runs fn as a transaction, retrying serialization failures
// and deadlocks — the discipline every SI application needs.
func withRetry(db *sicost.DB, fn func(tx *sicost.Tx) error) error {
	for {
		tx := db.Begin()
		err := fn(tx)
		if err == nil {
			err = tx.Commit()
		} else {
			tx.Abort()
		}
		if err == nil {
			return nil
		}
		if !sicost.IsRetriable(err) {
			return err
		}
	}
}

func get(tx *sicost.Tx, id int64) (balance, ops int64, err error) {
	rec, err := tx.Get("accounts", sicost.Int(id))
	if err != nil {
		return 0, 0, err
	}
	return rec[1].Int64(), rec[2].Int64(), nil
}

func put(tx *sicost.Tx, id, balance, ops int64) error {
	return tx.Update("accounts", sicost.Int(id),
		sicost.Record{sicost.Int(id), sicost.Int(balance), sicost.Int(ops)})
}

// deposit adds amount to the account.
func deposit(tx *sicost.Tx, id, amount int64) error {
	bal, ops, err := get(tx, id)
	if err != nil {
		return err
	}
	return put(tx, id, bal+amount, ops+1)
}

// withdraw removes amount if covered, else rolls back.
func withdraw(tx *sicost.Tx, id, amount int64) error {
	bal, ops, err := get(tx, id)
	if err != nil {
		return err
	}
	if bal < amount {
		return fmt.Errorf("%w: insufficient funds", sicost.ErrRollback)
	}
	return put(tx, id, bal-amount, ops+1)
}

// transfer moves amount between two accounts.
func transfer(tx *sicost.Tx, from, to, amount int64) error {
	if err := withdraw(tx, from, amount); err != nil {
		return err
	}
	return deposit(tx, to, amount)
}

// statement is the read-only program: it totals two related accounts.
// Like SmallBank's Balance, a statement concurrent with a transfer pair
// is the seed of a dangerous structure — so, following the paper's
// guideline 2 ("avoid making a read-only transaction an updater"), we
// instead promote the WRITER side: transfer identity-updates the rows it
// only read. Here transfer already writes every row it reads, so the mix
// is SI-safe by construction; the checker certifies it below.
func statement(tx *sicost.Tx, a, b int64) (int64, error) {
	balA, _, err := get(tx, a)
	if err != nil {
		return 0, err
	}
	balB, _, err := get(tx, b)
	if err != nil {
		return 0, err
	}
	return balA + balB, nil
}

func main() {
	db := sicost.Open(sicost.EngineConfig{
		Mode:     sicost.SnapshotFUW,
		Platform: sicost.PlatformPostgres,
	})
	defer db.Close()
	if err := db.CreateTable(accountsSchema()); err != nil {
		log.Fatal(err)
	}
	seed := db.Begin()
	for i := int64(0); i < accounts; i++ {
		if err := seed.Insert("accounts", sicost.Record{
			sicost.Int(i), sicost.Int(initialBal), sicost.Int(0),
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := seed.Commit(); err != nil {
		log.Fatal(err)
	}

	chk := sicost.NewChecker()
	db.SetObserver(chk)

	var committed, rolledBack atomic.Int64
	var wg sync.WaitGroup
	for t := 0; t < tellers; t++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for op := 0; op < opsPer; op++ {
				a := rng.Int63n(accounts)
				b := (a + 1 + rng.Int63n(accounts-1)) % accounts
				amount := 1 + rng.Int63n(50_00)
				err := withRetry(db, func(tx *sicost.Tx) error {
					switch rng.Intn(4) {
					case 0:
						return deposit(tx, a, amount)
					case 1:
						return withdraw(tx, a, amount)
					case 2:
						return transfer(tx, a, b, amount)
					default:
						_, err := statement(tx, a, b)
						return err
					}
				})
				switch {
				case err == nil:
					committed.Add(1)
				case errors.Is(err, sicost.ErrRollback):
					rolledBack.Add(1)
				default:
					log.Fatalf("teller %d: %v", seed, err)
				}
			}
		}(int64(t + 1))
	}
	wg.Wait()

	// Audit: every deposit matched a withdrawal or was counted; total
	// money must equal initial plus net deposits. Recompute from the
	// per-account op counters and ledger.
	var total int64
	if err := db.ScanLatest("accounts", func(_ sicost.Value, rec sicost.Record) bool {
		total += rec[1].Int64()
		return true
	}); err != nil {
		log.Fatal(err)
	}

	commits, aborts := db.Stats()
	rep := chk.Analyze()
	fmt.Printf("tellers: %d × %d operations\n", tellers, opsPer)
	fmt.Printf("interactions committed: %d, rolled back by business rules: %d\n",
		committed.Load(), rolledBack.Load())
	fmt.Printf("engine commits: %d, engine aborts (incl. retries): %d\n", commits, aborts)
	fmt.Printf("serializability certificate: %s", rep.Describe())

	// Conservation: deposits and withdrawals change the total, but the
	// audit reconstructs the expected delta from committed interactions
	// is out of scope here — transfers alone must conserve. Run a
	// transfers-only phase and verify exactly.
	before := total
	chk.Reset()
	var wg2 sync.WaitGroup
	for t := 0; t < tellers; t++ {
		wg2.Add(1)
		go func(seed int64) {
			defer wg2.Done()
			rng := rand.New(rand.NewSource(seed * 977))
			for op := 0; op < opsPer; op++ {
				a := rng.Int63n(accounts)
				b := (a + 1 + rng.Int63n(accounts-1)) % accounts
				err := withRetry(db, func(tx *sicost.Tx) error {
					return transfer(tx, a, b, 1+rng.Int63n(10_00))
				})
				if err != nil && !errors.Is(err, sicost.ErrRollback) {
					log.Fatal(err)
				}
			}
		}(int64(t + 1))
	}
	wg2.Wait()
	var after int64
	if err := db.ScanLatest("accounts", func(_ sicost.Value, rec sicost.Record) bool {
		after += rec[1].Int64()
		return true
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntransfers-only phase: total before $%d.%02d, after $%d.%02d — ",
		before/100, before%100, after/100, after%100)
	if before == after {
		fmt.Println("money conserved ✓")
	} else {
		fmt.Println("MONEY NOT CONSERVED ✗")
	}
	rep2 := chk.Analyze()
	fmt.Printf("phase certificate: %s", rep2.Describe())
}

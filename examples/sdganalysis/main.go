// SDG analysis walkthrough: compute the Static Dependency Graph of the
// SmallBank mix, find the dangerous structure, enumerate the minimal
// repair options, apply one, and verify the repaired mix is SI-safe —
// the full §III-C / §III-D workflow of the paper as a library call.
//
//	go run ./examples/sdganalysis
package main

import (
	"fmt"
	"log"

	"sicost"
)

func main() {
	// 1. The unmodified benchmark mix.
	programs := sicost.SmallBankPrograms()
	g, err := sicost.NewSDG(programs...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== SmallBank, unmodified (the paper's Figure 1) ===")
	fmt.Print(g.Describe())

	// 2. The theory's verdict and the repair options.
	if g.IsSafe() {
		log.Fatal("unexpected: SmallBank should have a dangerous structure")
	}
	fmt.Println("\nMinimal repair options (choose any one set of edges):")
	for _, set := range g.MinimalFixSets() {
		fmt.Printf("  %v\n", set)
	}

	// 3. Apply Option WT by promotion: the cheapest repair the paper
	// finds on PostgreSQL (it leaves the Balance program read-only).
	edge := g.Edge("WC", "TS")
	fixed, mods, err := sicost.Neutralize(programs, edge, sicost.PromoteUpdate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== After PromoteWT-upd ===")
	fmt.Println("modifications:")
	for _, m := range mods {
		fmt.Printf("  %s += %s\n", m.Program, m.Add)
	}
	g2, err := sicost.NewSDG(fixed...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(g2.Describe())

	// 4. A custom mix of your own programs: the library generalizes
	// beyond SmallBank. Here, a tiny inventory system with a reserved
	// quantity invariant.
	fmt.Println("\n=== A custom mix: inventory reserve/restock/audit ===")
	reserve := &sicost.Program{Name: "Reserve", Accesses: []sicost.Access{
		{Table: "Stock", Cols: []string{"qty"}, Param: "item", Kind: sicost.ReadAccess},
		{Table: "Reserved", Cols: []string{"qty"}, Param: "item", Kind: sicost.ReadAccess},
		{Table: "Reserved", Cols: []string{"qty"}, Param: "item", Kind: sicost.WriteAccess},
	}}
	restock := &sicost.Program{Name: "Restock", Accesses: []sicost.Access{
		{Table: "Stock", Cols: []string{"qty"}, Param: "item", Kind: sicost.ReadAccess},
		{Table: "Stock", Cols: []string{"qty"}, Param: "item", Kind: sicost.WriteAccess},
	}}
	audit := &sicost.Program{Name: "Audit", Accesses: []sicost.Access{
		{Table: "Stock", Cols: []string{"qty"}, Param: "item", Kind: sicost.ReadAccess},
		{Table: "Reserved", Cols: []string{"qty"}, Param: "item", Kind: sicost.ReadAccess},
	}}
	g3, err := sicost.NewSDG(reserve, restock, audit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(g3.Describe())
	if !g3.IsSafe() {
		fmt.Println("\nThe mix is unsafe under SI; materializing one edge fixes it:")
		for _, set := range g3.MinimalFixSets() {
			fmt.Printf("  repair option: %v\n", set)
		}
	}
}

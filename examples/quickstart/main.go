// Quickstart: open an SI engine, load SmallBank, run transactions, and
// see the cost/correctness trade-off of the paper in miniature.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sicost"
)

func main() {
	// A PostgreSQL-flavoured snapshot-isolation engine. No simulated
	// hardware costs: this example is about semantics.
	db := sicost.Open(sicost.EngineConfig{
		Mode:     sicost.SnapshotFUW,
		Platform: sicost.PlatformPostgres,
	})
	defer db.Close()

	if err := sicost.CreateSmallBank(db); err != nil {
		log.Fatal(err)
	}
	if _, err := sicost.LoadSmallBank(db, sicost.LoadConfig{Customers: 100, Seed: 1}); err != nil {
		log.Fatal(err)
	}
	alice := sicost.CustomerName(1)

	// Ordinary banking under plain SI.
	if err := sicost.RunSmallBank(db, sicost.StrategySI, sicost.DepositChecking,
		sicost.TxnParams{N1: alice, V: 50_00}); err != nil {
		log.Fatal(err)
	}
	tx := db.Begin()
	total, err := runBalance(tx, alice)
	if err != nil {
		log.Fatal(err)
	}
	_ = tx.Commit()
	fmt.Printf("alice's total balance: $%d.%02d\n", total/100, total%100)

	// The paper's point: plain SI admits non-serializable executions of
	// SmallBank. Attach the runtime checker and replay the dangerous
	// interleaving (WriteCheck concurrent with TransactSaving, observed
	// by Balance).
	chk := sicost.NewChecker()
	db.SetObserver(chk)

	wc := db.Begin() // WriteCheck's snapshot is taken now
	if err := sicost.RunSmallBank(db, sicost.StrategySI, sicost.TransactSaving,
		sicost.TxnParams{N1: alice, V: 900_00}); err != nil {
		log.Fatal(err)
	}
	if err := sicost.RunSmallBank(db, sicost.StrategySI, sicost.Balance,
		sicost.TxnParams{N1: alice}); err != nil {
		log.Fatal(err)
	}
	if err := writeCheckOn(wc, alice, 5000_00); err != nil {
		log.Fatal(err)
	}
	if err := wc.Commit(); err != nil {
		log.Fatal(err)
	}
	rep := chk.Analyze()
	fmt.Printf("\nplain SI, dangerous interleaving: %s", rep.Describe())

	// Now the same interleaving with the paper's cheapest repair:
	// PromoteWT-upd (an identity update on Saving inside WriteCheck).
	// First-Updater-Wins turns the anomaly into a retriable failure.
	chk.Reset()
	wc2 := db.Begin()
	if err := sicost.RunSmallBank(db, sicost.StrategyPromoteWTUpd, sicost.TransactSaving,
		sicost.TxnParams{N1: alice, V: 900_00}); err != nil {
		log.Fatal(err)
	}
	err = writeCheckPromotedOn(wc2, alice, 5000_00)
	switch {
	case err == nil:
		err = wc2.Commit()
	default:
		wc2.Abort()
	}
	if sicost.IsRetriable(err) {
		fmt.Println("\nPromoteWT-upd: WriteCheck got a serialization failure — retry and stay correct.")
	} else if err != nil {
		log.Fatal(err)
	} else {
		fmt.Println("\nPromoteWT-upd: interleaving was already safe this time.")
	}
	rep = chk.Analyze()
	fmt.Printf("with the strategy: %s", rep.Describe())
}

// runBalance executes the Balance program on an existing transaction.
func runBalance(tx *sicost.Tx, name string) (int64, error) {
	acct, err := tx.Get("Account", sicost.Str(name))
	if err != nil {
		return 0, err
	}
	cust := acct[1]
	sav, err := tx.Get("Saving", cust)
	if err != nil {
		return 0, err
	}
	chk, err := tx.Get("Checking", cust)
	if err != nil {
		return 0, err
	}
	return sav[1].Int64() + chk[1].Int64(), nil
}

// writeCheckOn runs the WriteCheck body on an already-open transaction
// (so its snapshot can predate a concurrent deposit).
func writeCheckOn(tx *sicost.Tx, name string, amount int64) error {
	return writeCheck(tx, name, amount, false)
}

// writeCheckPromotedOn is the PromoteWT-upd variant: it identity-updates
// the Saving row it read.
func writeCheckPromotedOn(tx *sicost.Tx, name string, amount int64) error {
	return writeCheck(tx, name, amount, true)
}

func writeCheck(tx *sicost.Tx, name string, amount int64, promote bool) error {
	acct, err := tx.Get("Account", sicost.Str(name))
	if err != nil {
		return err
	}
	cust := acct[1]
	sav, err := tx.Get("Saving", cust)
	if err != nil {
		return err
	}
	chk, err := tx.Get("Checking", cust)
	if err != nil {
		return err
	}
	pay := amount
	if sav[1].Int64()+chk[1].Int64() < amount {
		pay = amount + 1 // overdraft penalty
	}
	if err := tx.Update("Checking", cust,
		sicost.Record{cust, sicost.Int(chk[1].Int64() - pay)}); err != nil {
		return err
	}
	if promote {
		// UPDATE Saving SET Balance = Balance WHERE CustomerID = :x
		if err := tx.Update("Saving", cust, sav.Clone()); err != nil {
			return err
		}
	}
	return nil
}

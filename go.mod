module sicost

go 1.22

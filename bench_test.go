// Benchmarks: one per table/figure of the paper, each running a scaled-
// down version of the corresponding experiment and reporting throughput
// (tps) as the primary metric. The full-fidelity sweeps live behind
// cmd/sibench; these benches keep every figure's machinery exercised and
// comparable run-to-run.
package sicost_test

import (
	"testing"
	"time"

	"sicost"
	"sicost/internal/engine"
	"sicost/internal/experiments"
	"sicost/internal/sdg"
	"sicost/internal/smallbank"
	"sicost/internal/workload"
)

// benchScale shrinks the simulated hardware 5× so each iteration is
// quick; shapes are preserved.
const benchScale = 0.2

// benchCustomers keeps the loader fast while leaving the standard
// hotspot-to-table ratio intact.
const benchCustomers = 2000

// benchWorkload runs one short measured workload and reports TPS.
func benchWorkload(b *testing.B, engCfg engine.Config, s *smallbank.Strategy,
	mpl, hotspot int, mix workload.Mix) {
	b.Helper()
	var totalTPS float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		measured := engCfg.Res
		loadCfg := engCfg
		loadCfg.Res.VirtualCPUs = 0
		db := engine.Open(loadCfg)
		if err := smallbank.CreateSchema(db); err != nil {
			b.Fatal(err)
		}
		if _, err := smallbank.Load(db, smallbank.LoadConfig{Customers: benchCustomers, Seed: 7}); err != nil {
			b.Fatal(err)
		}
		db.SetResources(measured)
		b.StartTimer()

		res, err := workload.Run(db, workload.Config{
			Strategy: s, MPL: mpl, Customers: benchCustomers,
			HotspotSize: hotspot, HotspotProb: 0.9, Mix: mix,
			Ramp: 20 * time.Millisecond, Measure: 150 * time.Millisecond,
			Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		totalTPS += res.TPS

		b.StopTimer()
		db.Close()
		b.StartTimer()
	}
	b.ReportMetric(totalTPS/float64(b.N), "tps")
}

// BenchmarkTable1Static regenerates Table I: strategy metadata plus the
// SDG derivation and safety proof of every strategy.
func BenchmarkTable1Static(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range smallbank.Strategies() {
			_ = s.ExtraUpdates()
			progs, err := s.SDGPrograms()
			if err != nil {
				b.Fatal(err)
			}
			g, err := sdg.New(progs...)
			if err != nil {
				b.Fatal(err)
			}
			if s.GuaranteesSerializable() && !g.IsSafe() {
				b.Fatalf("%s not safe", s.Name)
			}
		}
	}
}

// BenchmarkFig1SDG builds and analyses the SmallBank SDG (Figure 1):
// edges, vulnerability, dangerous structures and minimal fix sets.
func BenchmarkFig1SDG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := sdg.New(smallbank.BasePrograms()...)
		if err != nil {
			b.Fatal(err)
		}
		if len(g.DangerousStructures()) != 1 {
			b.Fatal("analysis changed")
		}
		if len(g.MinimalFixSets()) != 2 {
			b.Fatal("fix sets changed")
		}
	}
}

// BenchmarkFig4 measures the ALL strategies on the PostgreSQL profile at
// the plateau MPL (Figure 4).
func BenchmarkFig4(b *testing.B) {
	for _, s := range []*smallbank.Strategy{
		smallbank.StrategySI, smallbank.StrategyMaterializeALL, smallbank.StrategyPromoteALL,
	} {
		b.Run(s.Name, func(b *testing.B) {
			benchWorkload(b, experiments.PostgresDB(benchScale), s, 20, 200, workload.UniformMix())
		})
	}
}

// BenchmarkFig5 measures the targeted WT/BW strategies on PostgreSQL
// (Figure 5) at low and plateau MPL — the two regimes the paper
// contrasts.
func BenchmarkFig5(b *testing.B) {
	for _, s := range []*smallbank.Strategy{
		smallbank.StrategySI,
		smallbank.StrategyMaterializeWT, smallbank.StrategyPromoteWTUpd,
		smallbank.StrategyMaterializeBW, smallbank.StrategyPromoteBWUpd,
	} {
		b.Run(s.Name+"/MPL1", func(b *testing.B) {
			benchWorkload(b, experiments.PostgresDB(benchScale), s, 1, 200, workload.UniformMix())
		})
		b.Run(s.Name+"/MPL20", func(b *testing.B) {
			benchWorkload(b, experiments.PostgresDB(benchScale), s, 20, 200, workload.UniformMix())
		})
	}
}

// BenchmarkFig6 measures the abort-rate experiment's configuration
// (MPL=20) and reports the serialization-abort share alongside TPS.
func BenchmarkFig6(b *testing.B) {
	for _, s := range []*smallbank.Strategy{
		smallbank.StrategySI, smallbank.StrategyPromoteBWUpd,
	} {
		b.Run(s.Name, func(b *testing.B) {
			benchWorkload(b, experiments.PostgresDB(benchScale), s, 20, 200, workload.UniformMix())
		})
	}
}

// BenchmarkFig7 measures the high-contention configuration: hotspot 10,
// 60% Balance (Figure 7).
func BenchmarkFig7(b *testing.B) {
	for _, s := range []*smallbank.Strategy{
		smallbank.StrategySI,
		smallbank.StrategyPromoteWTUpd,
		smallbank.StrategyMaterializeBW,
		smallbank.StrategyMaterializeALL,
	} {
		b.Run(s.Name, func(b *testing.B) {
			benchWorkload(b, experiments.PostgresDB(benchScale), s, 20, 10, workload.BalanceHeavyMix(0.6))
		})
	}
}

// BenchmarkFig8 measures Option WT on the commercial platform at its
// peak MPL (Figure 8).
func BenchmarkFig8(b *testing.B) {
	for _, s := range []*smallbank.Strategy{
		smallbank.StrategySI, smallbank.StrategyMaterializeWT,
		smallbank.StrategyPromoteWTSfu, smallbank.StrategyPromoteWTUpd,
	} {
		b.Run(s.Name, func(b *testing.B) {
			benchWorkload(b, experiments.CommercialDB(benchScale), s, 20, 200, workload.UniformMix())
		})
	}
}

// BenchmarkFig9 measures Option BW on the commercial platform (Figure 9).
func BenchmarkFig9(b *testing.B) {
	for _, s := range []*smallbank.Strategy{
		smallbank.StrategySI, smallbank.StrategyMaterializeBW,
		smallbank.StrategyPromoteBWSfu, smallbank.StrategyPromoteBWUpd,
	} {
		b.Run(s.Name, func(b *testing.B) {
			benchWorkload(b, experiments.CommercialDB(benchScale), s, 20, 200, workload.UniformMix())
		})
	}
}

// BenchmarkEngineReadTxn and BenchmarkEngineUpdateTxn are engine
// micro-benchmarks (no simulated hardware): raw transaction machinery
// cost.
func BenchmarkEngineReadTxn(b *testing.B) {
	db := sicost.Open(sicost.EngineConfig{Mode: sicost.SnapshotFUW})
	defer db.Close()
	if err := sicost.CreateSmallBank(db); err != nil {
		b.Fatal(err)
	}
	if _, err := sicost.LoadSmallBank(db, sicost.LoadConfig{Customers: 1000, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	name := sicost.CustomerName(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sicost.RunSmallBank(db, sicost.StrategySI, sicost.Balance,
			sicost.TxnParams{N1: name}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineUpdateTxn(b *testing.B) {
	db := sicost.Open(sicost.EngineConfig{Mode: sicost.SnapshotFUW})
	defer db.Close()
	if err := sicost.CreateSmallBank(db); err != nil {
		b.Fatal(err)
	}
	if _, err := sicost.LoadSmallBank(db, sicost.LoadConfig{Customers: 1000, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	name := sicost.CustomerName(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sicost.RunSmallBank(db, sicost.StrategySI, sicost.DepositChecking,
			sicost.TxnParams{N1: name, V: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckerAnalyze measures MVSG construction and cycle search
// over a recorded history.
func BenchmarkCheckerAnalyze(b *testing.B) {
	db := sicost.Open(sicost.EngineConfig{Mode: sicost.SnapshotFUW})
	defer db.Close()
	if err := sicost.CreateSmallBank(db); err != nil {
		b.Fatal(err)
	}
	if _, err := sicost.LoadSmallBank(db, sicost.LoadConfig{Customers: 200, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	chk := sicost.NewChecker()
	db.SetObserver(chk)
	if _, err := workload.Run(db, workload.Config{
		Strategy: smallbank.StrategySI, MPL: 8, Customers: 200,
		HotspotSize: 20, HotspotProb: 0.9,
		Measure: 200 * time.Millisecond, Seed: 3,
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := chk.Analyze()
		if rep.Txns == 0 {
			b.Fatal("empty history")
		}
	}
}

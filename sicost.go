// Package sicost is a from-scratch reproduction of
//
//	M. Alomari, M. Cahill, A. Fekete, U. Röhm:
//	"The Cost of Serializability on Platforms That Use Snapshot
//	Isolation", ICDE 2008.
//
// It bundles, as one library:
//
//   - a multi-version in-memory database engine with snapshot isolation
//     under the First-Updater-Wins rule (the PostgreSQL platform of the
//     paper), a commercial-platform variant in which SELECT...FOR UPDATE
//     participates in write-conflict detection, strict two-phase locking
//     and Cahill-style serializable SI (internal/engine over
//     internal/storage);
//   - the Static Dependency Graph theory: conflict edges, vulnerable
//     edges, dangerous structures, and the materialization/promotion
//     repairs (internal/sdg);
//   - the SmallBank benchmark with every strategy of the paper's §III-D
//     (internal/smallbank) and a closed-system workload driver
//     (internal/workload);
//   - a runtime multi-version serialization graph checker that certifies
//     executions serializable or produces an anomaly witness
//     (internal/checker);
//   - one experiment runner per table and figure of the evaluation
//     (internal/experiments, cmd/sibench).
//
// Quick start (see examples/quickstart for the runnable version):
//
//	db := sicost.Open(sicost.EngineConfig{Mode: sicost.SnapshotFUW})
//	defer db.Close()
//	if err := sicost.CreateSmallBank(db); err != nil { ... }
//	sicost.LoadSmallBank(db, sicost.LoadConfig{Customers: 100})
//	err := sicost.RunSmallBank(db, sicost.StrategyPromoteWTUpd,
//	        sicost.WriteCheck, sicost.TxnParams{N1: sicost.CustomerName(1), V: 100})
package sicost

import (
	"sicost/internal/checker"
	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/experiments"
	"sicost/internal/sdg"
	"sicost/internal/smallbank"
	"sicost/internal/workload"
)

// Engine types.
type (
	// DB is a database instance (one simulated server).
	DB = engine.DB
	// Tx is a transaction handle.
	Tx = engine.Tx
	// EngineConfig assembles a database instance.
	EngineConfig = engine.Config
	// CostModel holds per-platform strategy penalties.
	CostModel = engine.CostModel
	// TxInfo is the per-commit record delivered to observers.
	TxInfo = engine.TxInfo

	// Value is a typed column value; Record is a row image; Schema
	// declares a table with its Columns.
	Value  = core.Value
	Record = core.Record
	Schema = core.Schema
	Column = core.Column
)

// Column kinds.
const (
	KindInt    = core.KindInt
	KindString = core.KindString
)

// Concurrency-control modes and platforms.
const (
	SnapshotFUW    = core.SnapshotFUW
	Strict2PL      = core.Strict2PL
	SerializableSI = core.SerializableSI

	PlatformPostgres   = core.PlatformPostgres
	PlatformCommercial = core.PlatformCommercial
)

// Engine errors.
var (
	ErrSerialization   = core.ErrSerialization
	ErrDeadlock        = core.ErrDeadlock
	ErrNotFound        = core.ErrNotFound
	ErrUniqueViolation = core.ErrUniqueViolation
	ErrRollback        = core.ErrRollback
	ErrTxDone          = core.ErrTxDone
)

// Open creates a database instance.
func Open(cfg EngineConfig) *DB { return engine.Open(cfg) }

// IsRetriable reports whether an error is a transient concurrency
// failure (serialization failure or deadlock): abort and rerun.
func IsRetriable(err error) bool { return core.IsRetriable(err) }

// Int and Str construct column values; Null is the NULL value.
var (
	Int  = core.Int
	Str  = core.Str
	Null = core.Null
)

// SDG theory.
type (
	// Program is a transaction program abstracted to parameterized
	// read/write sets.
	Program = sdg.Program
	// Access is one data access of a Program.
	Access = sdg.Access
	// SDG is a computed static dependency graph.
	SDG = sdg.Graph
	// DangerousStructure is two consecutive vulnerable edges on a cycle.
	DangerousStructure = sdg.DangerousStructure
	// Technique is a repair technique (materialize / promote).
	Technique = sdg.Technique
)

// Repair techniques.
const (
	Materialize   = sdg.Materialize
	PromoteUpdate = sdg.PromoteUpdate
	PromoteSFU    = sdg.PromoteSFU
)

// Access kinds for Program declarations.
const (
	ReadAccess     = sdg.Read
	WriteAccess    = sdg.Write
	PredReadAccess = sdg.PredRead
)

// NewSDG computes the static dependency graph of a program mix.
func NewSDG(programs ...*Program) (*SDG, error) { return sdg.New(programs...) }

// Neutralize applies a repair technique to one SDG edge, returning the
// modified program mix.
var Neutralize = sdg.Neutralize

// SmallBank benchmark.
type (
	// Strategy is a program-modification scheme of the paper's §III-D.
	Strategy = smallbank.Strategy
	// TxnType names one of the five SmallBank programs.
	TxnType = smallbank.TxnType
	// TxnParams carries one invocation's arguments.
	TxnParams = smallbank.Params
	// LoadConfig parameterizes the initial population.
	LoadConfig = smallbank.LoadConfig
)

// The five SmallBank transactions.
const (
	Balance         = smallbank.Balance
	DepositChecking = smallbank.DepositChecking
	TransactSaving  = smallbank.TransactSaving
	Amalgamate      = smallbank.Amalgamate
	WriteCheck      = smallbank.WriteCheck
)

// The paper's strategies (§III-D, Table I).
var (
	StrategySI             = smallbank.StrategySI
	StrategyMaterializeWT  = smallbank.StrategyMaterializeWT
	StrategyPromoteWTUpd   = smallbank.StrategyPromoteWTUpd
	StrategyPromoteWTSfu   = smallbank.StrategyPromoteWTSfu
	StrategyMaterializeBW  = smallbank.StrategyMaterializeBW
	StrategyPromoteBWUpd   = smallbank.StrategyPromoteBWUpd
	StrategyPromoteBWSfu   = smallbank.StrategyPromoteBWSfu
	StrategyMaterializeALL = smallbank.StrategyMaterializeALL
	StrategyPromoteALL     = smallbank.StrategyPromoteALL
)

// Strategies lists every predefined strategy; StrategyByName resolves
// one by display name.
var (
	Strategies     = smallbank.Strategies
	StrategyByName = smallbank.ByName
)

// CustomerName renders customer i's account name.
var CustomerName = smallbank.CustomerName

// SmallBankPrograms returns the benchmark's unmodified mix in the SDG
// model (the paper's Figure 1 input).
var SmallBankPrograms = smallbank.BasePrograms

// CreateSmallBank declares the benchmark schema on db.
func CreateSmallBank(db *DB) error { return smallbank.CreateSchema(db) }

// LoadSmallBank populates the benchmark tables.
func LoadSmallBank(db *DB, cfg LoadConfig) (totalMoney int64, err error) {
	return smallbank.Load(db, cfg)
}

// RunSmallBank executes one transaction (begin/run/commit) under a
// strategy.
func RunSmallBank(db *DB, s *Strategy, typ TxnType, p TxnParams) error {
	return smallbank.Run(db, s, typ, p)
}

// Workload driver.
type (
	// WorkloadConfig parameterizes a closed-system run.
	WorkloadConfig = workload.Config
	// WorkloadResult is its outcome.
	WorkloadResult = workload.Result
	// Mix assigns probabilities to the five transactions.
	Mix = workload.Mix
)

// Workload mixes and runner.
var (
	UniformMix      = workload.UniformMix
	BalanceHeavyMix = workload.BalanceHeavyMix
	RunWorkload     = workload.Run
)

// Serializability checking.
type (
	// Checker records commits and builds the MVSG.
	Checker = checker.Checker
	// CheckReport is an analysis outcome (with anomaly witness).
	CheckReport = checker.Report
)

// NewChecker creates a checker; install it with db.SetObserver.
func NewChecker() *Checker { return checker.New() }

// Experiments (tables and figures of the paper).
type (
	// Experiment regenerates one table or figure.
	Experiment = experiments.Experiment
	// ExperimentConfig controls sweep size and fidelity.
	ExperimentConfig = experiments.Config
	// ExperimentResult is a rendered outcome.
	ExperimentResult = experiments.Result
)

// Experiment access and platform profiles.
var (
	AllExperiments   = experiments.All
	ExperimentByID   = experiments.ByID
	RenderExperiment = experiments.Render
	PostgresDB       = experiments.PostgresDB
	CommercialDB     = experiments.CommercialDB
)

package sicost_test

import (
	"errors"
	"testing"

	"sicost"
)

// TestFacadeEndToEnd drives the public API surface: open, load, run
// transactions under a strategy, analyze the SDG, and certify the
// execution with the checker.
func TestFacadeEndToEnd(t *testing.T) {
	db := sicost.Open(sicost.EngineConfig{
		Mode:     sicost.SnapshotFUW,
		Platform: sicost.PlatformPostgres,
	})
	defer db.Close()

	if err := sicost.CreateSmallBank(db); err != nil {
		t.Fatal(err)
	}
	total, err := sicost.LoadSmallBank(db, sicost.LoadConfig{Customers: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if total <= 0 {
		t.Fatal("no money loaded")
	}

	chk := sicost.NewChecker()
	db.SetObserver(chk)

	for i := 0; i < 20; i++ {
		err := sicost.RunSmallBank(db, sicost.StrategyPromoteWTUpd,
			sicost.DepositChecking, sicost.TxnParams{N1: sicost.CustomerName(i % 50), V: 100})
		if err != nil && !sicost.IsRetriable(err) {
			t.Fatal(err)
		}
	}
	rep := chk.Analyze()
	if !rep.Serializable {
		t.Fatalf("sequential deposits flagged: %s", rep.Describe())
	}

	// SDG via the facade.
	g, err := sicost.NewSDG(sicost.SmallBankPrograms()...)
	if err != nil {
		t.Fatal(err)
	}
	if g.IsSafe() {
		t.Fatal("base SmallBank must be unsafe")
	}
	fixed, mods, err := sicost.Neutralize(sicost.SmallBankPrograms(), g.Edge("WC", "TS"), sicost.PromoteUpdate)
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) == 0 {
		t.Fatal("no modifications emitted")
	}
	g2, err := sicost.NewSDG(fixed...)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.IsSafe() {
		t.Fatal("repair did not make the mix safe")
	}
}

func TestFacadeErrorsAndValues(t *testing.T) {
	db := sicost.Open(sicost.EngineConfig{Mode: sicost.SnapshotFUW})
	defer db.Close()
	if err := db.CreateTable(&sicost.Schema{
		Name:    "t",
		Columns: []sicost.Column{{Name: "k", Kind: sicost.KindInt, NotNull: true}},
		PK:      0,
	}); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	defer tx.Abort()
	if _, err := tx.Get("t", sicost.Int(1)); !errors.Is(err, sicost.ErrNotFound) {
		t.Fatalf("missing row: %v", err)
	}
	if sicost.Null().IsNull() != true || sicost.Str("x").Text() != "x" {
		t.Fatal("value constructors")
	}
	if !sicost.IsRetriable(sicost.ErrSerialization) || sicost.IsRetriable(sicost.ErrRollback) {
		t.Fatal("retriability classification")
	}
}

func TestFacadeStrategiesAndExperiments(t *testing.T) {
	if len(sicost.Strategies()) == 0 {
		t.Fatal("no strategies")
	}
	s, err := sicost.StrategyByName("MaterializeWT")
	if err != nil || s != sicost.StrategyMaterializeWT {
		t.Fatal("strategy lookup")
	}
	if len(sicost.AllExperiments()) < 16 {
		t.Fatal("experiments registry shrank")
	}
	if _, err := sicost.ExperimentByID("fig5a"); err != nil {
		t.Fatal(err)
	}
	if sicost.PostgresDB(1).Platform != sicost.PlatformPostgres {
		t.Fatal("postgres profile")
	}
	if sicost.CommercialDB(1).Platform != sicost.PlatformCommercial {
		t.Fatal("commercial profile")
	}
}

func TestFacadeWorkload(t *testing.T) {
	db := sicost.Open(sicost.EngineConfig{Mode: sicost.SnapshotFUW})
	defer db.Close()
	if err := sicost.CreateSmallBank(db); err != nil {
		t.Fatal(err)
	}
	if _, err := sicost.LoadSmallBank(db, sicost.LoadConfig{Customers: 60, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	res, err := sicost.RunWorkload(db, sicost.WorkloadConfig{
		Strategy: sicost.StrategySI, MPL: 3, Customers: 60,
		HotspotSize: 10, HotspotProb: 0.9,
		Mix:     sicost.BalanceHeavyMix(0.6),
		Measure: 100_000_000, // 100ms
		Seed:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatal("no commits")
	}
}
